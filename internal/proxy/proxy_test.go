package proxy

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/czar"
	"repro/internal/frontend"
	"repro/internal/member"
	"repro/internal/qcache"
	"repro/internal/sqlengine"
)

// fakeBackend answers from a local engine through the Submit-shaped
// session API, recording call counts.
type fakeBackend struct {
	engine *sqlengine.Engine
	calls  atomic.Int64
	killed atomic.Int64
	seq    atomic.Int64

	running []czar.QueryInfo
	status  *member.Status

	// midStreamFail, when set, makes every session stream its rows and
	// then fail with this error instead of completing — the shape of a
	// worker dying partway through a scan.
	midStreamFail error
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	e := sqlengine.New("LSST")
	if _, err := e.Execute(`CREATE TABLE Object (objectId BIGINT, ra_PS DOUBLE, note VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(`INSERT INTO Object VALUES (1, 10.5, 'a'), (2, 20.25, NULL), (3, 30.0, 'c')`); err != nil {
		t.Fatal(err)
	}
	return &fakeBackend{engine: e}
}

func (f *fakeBackend) Submit(ctx context.Context, sql string, opts czar.Options) (*czar.Query, error) {
	f.calls.Add(1)
	q, feed := czar.NewQueryHandle(f.seq.Add(1), sql, core.Interactive)
	go func() {
		res, err := f.engine.Query(sql)
		if err != nil {
			feed.Finish(nil, err)
			return
		}
		if f.midStreamFail != nil {
			feed.SetColumns(res.Cols...)
			feed.Push(res.Rows...)
			feed.Finish(nil, f.midStreamFail)
			return
		}
		feed.Finish(res, nil)
	}()
	return q, nil
}

func (f *fakeBackend) Running() []czar.QueryInfo { return f.running }

func (f *fakeBackend) ClusterStatus() (member.Status, bool) {
	if f.status == nil {
		return member.Status{}, false
	}
	return *f.status, true
}

func (f *fakeBackend) CacheStats() (qcache.Stats, bool) { return qcache.Stats{}, false }

func (f *fakeBackend) MetricsText() (string, bool) { return "", false }

func (f *fakeBackend) Profile(id int64) (string, bool) { return "", false }

func (f *fakeBackend) Profiles(n int) []string { return nil }

func (f *fakeBackend) Kill(id int64) bool {
	for _, qi := range f.running {
		if qi.ID == id {
			f.killed.Add(1)
			return true
		}
	}
	return false
}

func startProxy(t *testing.T, backends ...Backend) (*Server, *Client) {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", backends...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestQueryRoundTrip(t *testing.T) {
	_, c := startProxy(t, newFakeBackend(t))
	res, err := c.Query("SELECT objectId, ra_PS, note FROM Object ORDER BY objectId")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 3 || res.Cols[0] != "objectId" {
		t.Fatalf("cols: %v", res.Cols)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.Rows[0][0].(int64) != 1 || res.Rows[0][1].(float64) != 10.5 || res.Rows[0][2].(string) != "a" {
		t.Errorf("row 0: %v", res.Rows[0])
	}
	if res.Rows[1][2] != nil {
		t.Errorf("NULL not preserved: %v", res.Rows[1][2])
	}
}

func TestErrorPropagation(t *testing.T) {
	_, c := startProxy(t, newFakeBackend(t))
	_, err := c.Query("SELECT * FROM NoSuch")
	if err == nil || !strings.Contains(err.Error(), "NoSuch") {
		t.Fatalf("error not propagated: %v", err)
	}
	// Connection survives an error.
	res, err := c.Query("SELECT COUNT(*) FROM Object")
	if err != nil || res.Rows[0][0].(int64) != 3 {
		t.Fatalf("connection dead after error: %v %v", res, err)
	}
}

// TestV1ErrorAfterHeaderPinned pins the v1 protocol's answer to a
// backend failing after rows have already streamed: because the "OK
// <ncols> <nrows>" header requires the row count, v1 buffers the whole
// session first — so a mid-stream failure becomes a clean ERR frame
// and the already-streamed rows are discarded. v1 can never deliver a
// partial result, and equally can never deliver an early one; protocol
// v2 (TestV2MidStreamError in package frontend) delivers the rows and
// then an in-band mid-stream error frame.
func TestV1ErrorAfterHeaderPinned(t *testing.T) {
	b := newFakeBackend(t)
	b.midStreamFail = fmt.Errorf("worker w2 died mid-scan")
	_, c := startProxy(t, b)

	res, err := c.Query("SELECT objectId FROM Object")
	if err == nil || !strings.Contains(err.Error(), "worker w2 died mid-scan") {
		t.Fatalf("err = %v, want the mid-scan failure as a clean ERR", err)
	}
	if res != nil {
		t.Fatalf("v1 must not deliver a partial result, got %v", res)
	}
	// The connection survives: the error consumed exactly one reply.
	b.midStreamFail = nil
	res, err = c.Query("SELECT COUNT(*) FROM Object")
	if err != nil || res.Rows[0][0].(int64) != 3 {
		t.Fatalf("connection dead after mid-stream error: %v %v", res, err)
	}
}

// TestV1AndV2ShareOneListener: the handshake version byte routes each
// connection; legacy v1 clients and streaming v2 clients coexist on
// the same port.
func TestV1AndV2ShareOneListener(t *testing.T) {
	srv, v1 := startProxy(t, newFakeBackend(t))

	res, err := v1.Query("SELECT COUNT(*) FROM Object")
	if err != nil || res.Rows[0][0].(int64) != 3 {
		t.Fatalf("v1 query: %v %v", res, err)
	}

	v2, err := frontend.Dial(srv.Addr(), "alice", "LSST")
	if err != nil {
		t.Fatalf("v2 dial on the v1 listener: %v", err)
	}
	defer v2.Close()
	st, err := v2.Query(context.Background(), "SELECT COUNT(*) FROM Object")
	if err != nil {
		t.Fatalf("v2 query: %v", err)
	}
	row, ok := st.Next()
	if !ok || row[0].(int64) != 3 {
		t.Fatalf("v2 row = %v, %v", row, ok)
	}
	for {
		if _, ok := st.Next(); !ok {
			break
		}
	}
	if st.Err() != nil {
		t.Fatalf("v2 stream: %v", st.Err())
	}

	// And v1 still works after v2 traffic.
	if res, err := v1.Query("SELECT COUNT(*) FROM Object"); err != nil || res.Rows[0][0].(int64) != 3 {
		t.Fatalf("v1 after v2: %v %v", res, err)
	}
}

func TestMultipleQueriesSameConnection(t *testing.T) {
	_, c := startProxy(t, newFakeBackend(t))
	for i := 0; i < 20; i++ {
		res, err := c.Query(fmt.Sprintf("SELECT COUNT(*) FROM Object WHERE objectId <= %d", i%4))
		if err != nil {
			t.Fatal(err)
		}
		want := int64(i % 4)
		if want > 3 {
			want = 3
		}
		if res.Rows[0][0].(int64) != want {
			t.Fatalf("i=%d: %v", i, res.Rows[0][0])
		}
	}
}

func TestLoadBalancingAcrossCzars(t *testing.T) {
	// Section 7.6: "launch multiple master instances ... some logic in
	// the MySQL proxy to load-balance between different Qserv masters."
	b1, b2 := newFakeBackend(t), newFakeBackend(t)
	_, c := startProxy(t, b1, b2)
	for i := 0; i < 10; i++ {
		if _, err := c.Query("SELECT COUNT(*) FROM Object"); err != nil {
			t.Fatal(err)
		}
	}
	if b1.calls.Load() == 0 || b2.calls.Load() == 0 {
		t.Errorf("load not balanced: %d vs %d", b1.calls.Load(), b2.calls.Load())
	}
	if b1.calls.Load()+b2.calls.Load() != 10 {
		t.Errorf("total calls = %d", b1.calls.Load()+b2.calls.Load())
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startProxy(t, newFakeBackend(t))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				res, err := c.Query("SELECT SUM(objectId) FROM Object")
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0].(int64) != 6 {
					errs <- fmt.Errorf("sum = %v", res.Rows[0][0])
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestValueDecodeFrozen pins the v1 value encoding byte-for-byte: the
// decoder must keep reading what historical servers wrote.
func TestValueDecodeFrozen(t *testing.T) {
	cases := []struct {
		enc  string
		want sqlengine.Value
	}{
		{"\x00", nil},
		{"i-5", int64(-5)},
		{"f2.5e-28", float64(2.5e-28)},
		{"shello", "hello"},
		{"s", ""},
	}
	for _, tc := range cases {
		dec, err := decodeValue([]byte(tc.enc))
		if err != nil {
			t.Fatalf("decode(%q): %v", tc.enc, err)
		}
		if dec != tc.want {
			t.Errorf("decode(%q) = %v, want %v", tc.enc, dec, tc.want)
		}
	}
	if _, err := decodeValue([]byte{}); err == nil {
		t.Error("empty frame should fail")
	}
	if _, err := decodeValue([]byte("x?")); err == nil {
		t.Error("bad tag should fail")
	}
}

func TestServeRequiresBackend(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil...); err == nil {
		t.Error("no backends should fail")
	}
}

// TestShowProcesslistAndKill drives the query-management commands over
// the wire: PROCESSLIST unions every backend, KILL finds the owning
// backend, unknown ids error.
func TestShowProcesslistAndKill(t *testing.T) {
	b1, b2 := newFakeBackend(t), newFakeBackend(t)
	b1.running = []czar.QueryInfo{{ID: 3, SQL: "SELECT 1 FROM Object", Started: time.Now()}}
	b2.running = []czar.QueryInfo{{ID: 8, SQL: "SELECT 2 FROM Object", Started: time.Now()}}
	_, c := startProxy(t, b1, b2)

	res, err := c.Query("SHOW PROCESSLIST")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("processlist rows = %d, want 2", len(res.Rows))
	}
	if res.Cols[0] != "Id" || res.Rows[0][0].(int64) != 3 || res.Rows[1][0].(int64) != 8 {
		t.Errorf("processlist content: %v %v", res.Cols, res.Rows)
	}
	// The czar column distinguishes the backends.
	if res.Rows[0][1].(int64) == res.Rows[1][1].(int64) {
		t.Errorf("both queries attributed to one czar: %v", res.Rows)
	}

	// Case-insensitive, trailing semicolon tolerated.
	if res, err = c.Query("show processlist;"); err != nil || len(res.Rows) != 2 {
		t.Fatalf("lowercase processlist: %v %v", res, err)
	}

	if res, err = c.Query("KILL 8"); err != nil {
		t.Fatal(err)
	} else if res.Rows[0][0].(int64) != 8 {
		t.Errorf("kill result: %v", res.Rows)
	}
	if b2.killed.Load() != 1 || b1.killed.Load() != 0 {
		t.Errorf("kill routed wrong: b1=%d b2=%d", b1.killed.Load(), b2.killed.Load())
	}
	if _, err := c.Query("KILL 99"); err == nil {
		t.Error("killing an unknown id should error")
	}
	if _, err := c.Query("KILL abc"); err == nil {
		t.Error("non-numeric KILL id should error")
	}
	// Plain SQL still flows after admin commands on the same conn.
	if res, err := c.Query("SELECT COUNT(*) FROM Object"); err != nil || res.Rows[0][0].(int64) != 3 {
		t.Fatalf("SQL after admin: %v %v", res, err)
	}
}

// TestKillAmbiguousAcrossCzars: colliding czar-local ids force the
// qualified KILL <czar>:<id> form.
func TestKillAmbiguousAcrossCzars(t *testing.T) {
	b1, b2 := newFakeBackend(t), newFakeBackend(t)
	b1.running = []czar.QueryInfo{{ID: 4, SQL: "SELECT a", Started: time.Now()}}
	b2.running = []czar.QueryInfo{{ID: 4, SQL: "SELECT b", Started: time.Now()}}
	_, c := startProxy(t, b1, b2)

	if _, err := c.Query("KILL 4"); err == nil || !strings.Contains(err.Error(), "KILL <czar>:4") {
		t.Fatalf("ambiguous bare KILL should instruct qualification, got %v", err)
	}
	if b1.killed.Load()+b2.killed.Load() != 0 {
		t.Fatal("ambiguous KILL killed something")
	}
	res, err := c.Query("KILL 1:4")
	if err != nil || res.Rows[0][0].(int64) != 4 {
		t.Fatalf("qualified KILL: %v %v", res, err)
	}
	if b1.killed.Load() != 0 || b2.killed.Load() != 1 {
		t.Errorf("qualified KILL routed wrong: b1=%d b2=%d", b1.killed.Load(), b2.killed.Load())
	}
	if _, err := c.Query("KILL 9:4"); err == nil {
		t.Error("out-of-range czar index should error")
	}
	if _, err := c.Query("KILL 0:99"); err == nil {
		t.Error("unknown id on named czar should error")
	}
}

// TestShowWorkers: the availability snapshot renders one row per
// worker, served from the first backend that has a membership wired.
func TestShowWorkers(t *testing.T) {
	noStatus := newFakeBackend(t)
	withStatus := newFakeBackend(t)
	withStatus.status = &member.Status{
		Epoch: 7,
		Workers: []member.WorkerStatus{
			{Name: "worker-000", State: member.StateAlive, Chunks: 12, LastSeen: time.Now()},
			{Name: "worker-001", State: member.StateDead, Chunks: 0, Misses: 5, LastErr: "offline"},
		},
		Repair: member.RepairProgress{ChunksRepaired: 3, TablesCopied: 6, BytesCopied: 4096},
	}
	_, c := startProxy(t, noStatus, withStatus)

	res, err := c.Query("SHOW WORKERS")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("SHOW WORKERS rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0][0] != "worker-000" || res.Rows[0][1] != "alive" || res.Rows[0][2].(int64) != 12 {
		t.Errorf("row 0 = %v", res.Rows[0])
	}
	if res.Rows[1][1] != "dead" || res.Rows[1][3].(int64) != 5 || res.Rows[1][5] != "offline" {
		t.Errorf("row 1 = %v", res.Rows[1])
	}

	rep, err := c.Query("SHOW REPAIRS")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows[0][0].(int64) != 7 || rep.Rows[0][1].(int64) != 3 || rep.Rows[0][2].(int64) != 0 || rep.Rows[0][5].(int64) != 4096 {
		t.Errorf("SHOW REPAIRS = %v", rep.Rows[0])
	}
}

// TestShowWorkersWithoutMembership: a proxy over membership-less
// backends reports a clear error rather than an empty table.
func TestShowWorkersWithoutMembership(t *testing.T) {
	_, c := startProxy(t, newFakeBackend(t))
	if _, err := c.Query("SHOW WORKERS"); err == nil || !strings.Contains(err.Error(), "availability") {
		t.Fatalf("SHOW WORKERS without membership: %v", err)
	}
}
