package proxy

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/czar"
	"repro/internal/sqlengine"
)

// fakeBackend answers from a local engine, recording call counts.
type fakeBackend struct {
	engine *sqlengine.Engine
	calls  atomic.Int64
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	e := sqlengine.New("LSST")
	if _, err := e.Execute(`CREATE TABLE Object (objectId BIGINT, ra_PS DOUBLE, note VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(`INSERT INTO Object VALUES (1, 10.5, 'a'), (2, 20.25, NULL), (3, 30.0, 'c')`); err != nil {
		t.Fatal(err)
	}
	return &fakeBackend{engine: e}
}

func (f *fakeBackend) Query(sql string) (*czar.QueryResult, error) {
	f.calls.Add(1)
	res, err := f.engine.Query(sql)
	if err != nil {
		return nil, err
	}
	return &czar.QueryResult{Result: res}, nil
}

func startProxy(t *testing.T, backends ...Backend) (*Server, *Client) {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", backends...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestQueryRoundTrip(t *testing.T) {
	_, c := startProxy(t, newFakeBackend(t))
	res, err := c.Query("SELECT objectId, ra_PS, note FROM Object ORDER BY objectId")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 3 || res.Cols[0] != "objectId" {
		t.Fatalf("cols: %v", res.Cols)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.Rows[0][0].(int64) != 1 || res.Rows[0][1].(float64) != 10.5 || res.Rows[0][2].(string) != "a" {
		t.Errorf("row 0: %v", res.Rows[0])
	}
	if res.Rows[1][2] != nil {
		t.Errorf("NULL not preserved: %v", res.Rows[1][2])
	}
}

func TestErrorPropagation(t *testing.T) {
	_, c := startProxy(t, newFakeBackend(t))
	_, err := c.Query("SELECT * FROM NoSuch")
	if err == nil || !strings.Contains(err.Error(), "NoSuch") {
		t.Fatalf("error not propagated: %v", err)
	}
	// Connection survives an error.
	res, err := c.Query("SELECT COUNT(*) FROM Object")
	if err != nil || res.Rows[0][0].(int64) != 3 {
		t.Fatalf("connection dead after error: %v %v", res, err)
	}
}

func TestMultipleQueriesSameConnection(t *testing.T) {
	_, c := startProxy(t, newFakeBackend(t))
	for i := 0; i < 20; i++ {
		res, err := c.Query(fmt.Sprintf("SELECT COUNT(*) FROM Object WHERE objectId <= %d", i%4))
		if err != nil {
			t.Fatal(err)
		}
		want := int64(i % 4)
		if want > 3 {
			want = 3
		}
		if res.Rows[0][0].(int64) != want {
			t.Fatalf("i=%d: %v", i, res.Rows[0][0])
		}
	}
}

func TestLoadBalancingAcrossCzars(t *testing.T) {
	// Section 7.6: "launch multiple master instances ... some logic in
	// the MySQL proxy to load-balance between different Qserv masters."
	b1, b2 := newFakeBackend(t), newFakeBackend(t)
	_, c := startProxy(t, b1, b2)
	for i := 0; i < 10; i++ {
		if _, err := c.Query("SELECT COUNT(*) FROM Object"); err != nil {
			t.Fatal(err)
		}
	}
	if b1.calls.Load() == 0 || b2.calls.Load() == 0 {
		t.Errorf("load not balanced: %d vs %d", b1.calls.Load(), b2.calls.Load())
	}
	if b1.calls.Load()+b2.calls.Load() != 10 {
		t.Errorf("total calls = %d", b1.calls.Load()+b2.calls.Load())
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startProxy(t, newFakeBackend(t))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				res, err := c.Query("SELECT SUM(objectId) FROM Object")
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0].(int64) != 6 {
					errs <- fmt.Errorf("sum = %v", res.Rows[0][0])
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestValueCodec(t *testing.T) {
	vals := []sqlengine.Value{nil, int64(-5), float64(2.5e-28), "hello", ""}
	for _, v := range vals {
		enc := encodeValue(v)
		dec, err := decodeValue(enc)
		if err != nil {
			t.Fatalf("decode(%v): %v", v, err)
		}
		if v == nil {
			if dec != nil {
				t.Errorf("nil round trip: %v", dec)
			}
			continue
		}
		if dec != v {
			t.Errorf("round trip %v -> %v", v, dec)
		}
	}
	if _, err := decodeValue([]byte{}); err == nil {
		t.Error("empty frame should fail")
	}
	if _, err := decodeValue([]byte("x?")); err == nil {
		t.Error("bad tag should fail")
	}
}

func TestServeRequiresBackend(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil...); err == nil {
		t.Error("no backends should fail")
	}
}
