// Package proxy is the legacy v1 face of the SQL frontend (the MySQL
// Proxy role of paper section 5.4). The serving machinery moved to
// package frontend, which speaks both protocols on one listener; proxy
// remains as the v1-compatible API surface — Serve starts a frontend
// with no admission limits (v1's historical behavior), and Client is
// the frozen v1 wire client.
//
// Protocol v1: the client sends one query as a length-prefixed UTF-8
// string; the server replies with a header frame "OK <ncols> <nrows>"
// or "ERR <message>", then ncols column-name frames, then ncols x
// nrows value frames (NULL encoded as a one-byte 0x00 frame). The row
// count in the header means the server buffers the entire result
// before the first byte, and a backend failure after the header has no
// in-band error channel — the reasons protocol v2 exists (see package
// frontend). The v1 codec below is frozen: it must keep decoding what
// historical servers wrote.
package proxy

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"repro/internal/frontend"
	"repro/internal/sqlengine"
)

// maxFrame bounds one frame (64 MiB).
const maxFrame = 64 << 20

// Backend is the frontend's Submit-shaped streaming backend;
// *czar.Czar implements it. (The old blocking Query backend is gone:
// the v1 protocol is now served by buffering a streaming session.)
type Backend = frontend.Backend

// Server is the shared two-protocol frontend server.
type Server = frontend.Server

// Serve starts a frontend on addr with no admission limits — the v1
// package's historical contract. Use frontend.Serve to bound sessions.
func Serve(addr string, backends ...Backend) (*Server, error) {
	return frontend.Serve(addr, frontend.Config{}, backends...)
}

// ---------- the frozen v1 client ----------

// Client is a v1 proxy client ("any MySQL-compatible client" in the
// paper's architecture). It buffers: Query returns only after the full
// result arrived.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a proxy.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proxy: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close drops the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Result is a client-side query result.
type Result struct {
	Cols []string
	Rows [][]sqlengine.Value
}

// Query runs one SQL statement through the proxy.
func (c *Client) Query(sql string) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.w, []byte(sql)); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	header, err := readFrame(c.r)
	if err != nil {
		return nil, err
	}
	h := string(header)
	if strings.HasPrefix(h, "ERR ") {
		return nil, fmt.Errorf("proxy: server error: %s", h[4:])
	}
	var ncols, nrows int
	if _, err := fmt.Sscanf(h, "OK %d %d", &ncols, &nrows); err != nil {
		return nil, fmt.Errorf("proxy: bad header %q", h)
	}
	res := &Result{}
	for i := 0; i < ncols; i++ {
		col, err := readFrame(c.r)
		if err != nil {
			return nil, err
		}
		res.Cols = append(res.Cols, string(col))
	}
	for i := 0; i < nrows; i++ {
		row := make([]sqlengine.Value, ncols)
		for j := 0; j < ncols; j++ {
			frame, err := readFrame(c.r)
			if err != nil {
				return nil, err
			}
			v, err := decodeValue(frame)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func decodeValue(b []byte) (sqlengine.Value, error) {
	if len(b) == 1 && b[0] == 0 {
		return nil, nil
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("proxy: empty value frame")
	}
	body := string(b[1:])
	switch b[0] {
	case 'i':
		return strconv.ParseInt(body, 10, 64)
	case 'f':
		return strconv.ParseFloat(body, 64)
	case 's':
		return body, nil
	default:
		return nil, fmt.Errorf("proxy: bad value tag %q", b[0])
	}
}

func writeFrame(w *bufio.Writer, data []byte) error {
	if err := binary.Write(w, binary.BigEndian, uint32(len(data))); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func readFrame(r *bufio.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("proxy: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
