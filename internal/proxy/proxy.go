// Package proxy stands in for the MySQL Proxy frontend of paper section
// 5.4: it lets any client submit SQL text to a czar over TCP and get a
// tabular result back. The wire protocol is a simple framed protocol
// rather than the MySQL protocol (the proxy's role in the paper is only
// client compatibility, which a plain protocol preserves). It also
// supports load-balancing across multiple czars — the first of the two
// distributed-management strategies discussed in section 7.6.
//
// Protocol: the client sends one query as a length-prefixed UTF-8
// string; the server replies with a header frame "OK <ncols> <nrows>"
// or "ERR <message>", then ncols column-name frames, then ncols x nrows
// value frames (NULL encoded as a one-byte 0x00 frame).
package proxy

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/czar"
	"repro/internal/member"
	"repro/internal/sqlengine"
)

// maxFrame bounds one frame (64 MiB).
const maxFrame = 64 << 20

// Backend answers SQL queries and exposes the czar's query-management
// interface (paper section 5); *czar.Czar implements it.
type Backend interface {
	Query(sql string) (*czar.QueryResult, error)
	// Running lists the backend's in-flight queries.
	Running() []czar.QueryInfo
	// Kill cancels an in-flight query by id.
	Kill(id int64) bool
	// ClusterStatus reports cluster availability (worker health, chunk
	// counts, repair progress); ok is false when the backend has no
	// membership subsystem wired.
	ClusterStatus() (member.Status, bool)
}

// Server serves SQL over TCP, round-robining across backends.
type Server struct {
	backends []Backend
	next     atomic.Int64
	ln       net.Listener
	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]bool
	wg       sync.WaitGroup
}

// Serve starts a proxy on addr over one or more backends.
func Serve(addr string, backends ...Backend) (*Server, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("proxy: no backends")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proxy: listen: %w", err)
	}
	s := &Server{backends: backends, ln: ln, conns: map[net.Conn]bool{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		sqlBytes, err := readFrame(r)
		if err != nil {
			return
		}
		sql := string(sqlBytes)
		var cols []string
		var rows [][]sqlengine.Value
		var qerr error
		if acols, arows, handled, aerr := s.admin(sql); handled {
			cols, rows, qerr = acols, arows, aerr
		} else {
			// Round-robin across czars (section 7.6's multi-master
			// load-balancing).
			idx := int(s.next.Add(1)-1) % len(s.backends)
			var res *czar.QueryResult
			res, qerr = s.backends[idx].Query(sql)
			if qerr == nil {
				cols = res.Cols
				rows = make([][]sqlengine.Value, len(res.Rows))
				for i, row := range res.Rows {
					rows[i] = row
				}
			}
		}
		if qerr != nil {
			writeFrame(w, []byte("ERR "+qerr.Error()))
			w.Flush()
			continue
		}
		header := fmt.Sprintf("OK %d %d", len(cols), len(rows))
		if err := writeFrame(w, []byte(header)); err != nil {
			return
		}
		for _, c := range cols {
			if err := writeFrame(w, []byte(c)); err != nil {
				return
			}
		}
		for _, row := range rows {
			for _, v := range row {
				if err := writeFrame(w, encodeValue(v)); err != nil {
					return
				}
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// admin intercepts the query-management commands — `SHOW PROCESSLIST`,
// `SHOW WORKERS`, `SHOW REPAIRS`, and `KILL <id>` — before backend
// dispatch, since they address every czar behind the proxy, not
// whichever the round-robin lands on. handled is false for ordinary
// SQL.
func (s *Server) admin(sql string) (cols []string, rows [][]sqlengine.Value, handled bool, err error) {
	fields := strings.Fields(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
	switch {
	case len(fields) == 2 && strings.EqualFold(fields[0], "SHOW") && strings.EqualFold(fields[1], "WORKERS"):
		// Worker health comes from whichever backend has the
		// availability subsystem wired; backends share one cluster, so
		// the first wired view is the view.
		st, ok := s.clusterStatus()
		if !ok {
			return nil, nil, true, fmt.Errorf("proxy: no availability subsystem is wired (SHOW WORKERS needs a czar with membership)")
		}
		cols = []string{"Worker", "State", "Chunks", "Misses", "LastSeen", "LastError"}
		for _, w := range st.Workers {
			lastSeen := "never"
			if !w.LastSeen.IsZero() {
				lastSeen = time.Since(w.LastSeen).Round(time.Millisecond).String() + " ago"
			}
			rows = append(rows, []sqlengine.Value{
				w.Name, w.State.String(), int64(w.Chunks), int64(w.Misses), lastSeen, w.LastErr,
			})
		}
		return cols, rows, true, nil
	case len(fields) == 2 && strings.EqualFold(fields[0], "SHOW") && strings.EqualFold(fields[1], "REPAIRS"):
		st, ok := s.clusterStatus()
		if !ok {
			return nil, nil, true, fmt.Errorf("proxy: no availability subsystem is wired (SHOW REPAIRS needs a czar with membership)")
		}
		cols = []string{"PlacementEpoch", "ChunksRepaired", "ChunksHealed", "ChunksPending", "TablesCopied", "BytesCopied", "LastError"}
		rows = append(rows, []sqlengine.Value{
			st.Epoch, int64(st.Repair.ChunksRepaired), int64(st.Repair.ChunksHealed), int64(st.Repair.ChunksPending),
			int64(st.Repair.TablesCopied), st.Repair.BytesCopied, st.Repair.LastError,
		})
		return cols, rows, true, nil
	case len(fields) == 2 && strings.EqualFold(fields[0], "SHOW") && strings.EqualFold(fields[1], "PROCESSLIST"):
		cols = []string{"Id", "Czar", "Class", "Time", "Chunks", "Rows", "Info"}
		for bi, b := range s.backends {
			for _, qi := range b.Running() {
				rows = append(rows, []sqlengine.Value{
					qi.ID,
					int64(bi),
					qi.Class.String(),
					time.Since(qi.Started).Round(time.Millisecond).String(),
					fmt.Sprintf("%d/%d", qi.ChunksCompleted, qi.ChunksTotal),
					qi.RowsMerged,
					qi.SQL,
				})
			}
		}
		return cols, rows, true, nil
	case len(fields) == 2 && strings.EqualFold(fields[0], "KILL"):
		// Czar-local query ids can collide across backends; an
		// explicit `KILL <czar>:<id>` targets one backend, and a bare
		// id is honored only when exactly one backend runs it.
		if czarStr, idStr, qualified := strings.Cut(fields[1], ":"); qualified {
			bi, berr := strconv.Atoi(czarStr)
			id, perr := strconv.ParseInt(idStr, 10, 64)
			if berr != nil || perr != nil || bi < 0 || bi >= len(s.backends) {
				return nil, nil, true, fmt.Errorf("proxy: bad KILL target %q", fields[1])
			}
			if !s.backends[bi].Kill(id) {
				return nil, nil, true, fmt.Errorf("proxy: no query %d on czar %d", id, bi)
			}
			return []string{"killed"}, [][]sqlengine.Value{{id}}, true, nil
		}
		id, perr := strconv.ParseInt(fields[1], 10, 64)
		if perr != nil {
			return nil, nil, true, fmt.Errorf("proxy: bad KILL id %q", fields[1])
		}
		var owners []int
		for bi, b := range s.backends {
			for _, qi := range b.Running() {
				if qi.ID == id {
					owners = append(owners, bi)
					break
				}
			}
		}
		switch len(owners) {
		case 0:
			return nil, nil, true, fmt.Errorf("proxy: no such query %d", id)
		case 1:
			if !s.backends[owners[0]].Kill(id) {
				return nil, nil, true, fmt.Errorf("proxy: no such query %d", id)
			}
			return []string{"killed"}, [][]sqlengine.Value{{id}}, true, nil
		default:
			return nil, nil, true, fmt.Errorf(
				"proxy: query id %d is running on %d czars; use KILL <czar>:%d (czar column of SHOW PROCESSLIST)",
				id, len(owners), id)
		}
	}
	return nil, nil, false, nil
}

// clusterStatus returns the first backend's availability view.
func (s *Server) clusterStatus() (member.Status, bool) {
	for _, b := range s.backends {
		if st, ok := b.ClusterStatus(); ok {
			return st, true
		}
	}
	return member.Status{}, false
}

func encodeValue(v sqlengine.Value) []byte {
	if sqlengine.IsNull(v) {
		return []byte{0}
	}
	switch x := v.(type) {
	case int64:
		return []byte("i" + strconv.FormatInt(x, 10))
	case float64:
		return []byte("f" + strconv.FormatFloat(x, 'g', -1, 64))
	case string:
		return []byte("s" + x)
	default:
		return []byte("s" + sqlengine.FormatValue(v))
	}
}

func decodeValue(b []byte) (sqlengine.Value, error) {
	if len(b) == 1 && b[0] == 0 {
		return nil, nil
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("proxy: empty value frame")
	}
	body := string(b[1:])
	switch b[0] {
	case 'i':
		return strconv.ParseInt(body, 10, 64)
	case 'f':
		return strconv.ParseFloat(body, 64)
	case 's':
		return body, nil
	default:
		return nil, fmt.Errorf("proxy: bad value tag %q", b[0])
	}
}

func writeFrame(w *bufio.Writer, data []byte) error {
	if err := binary.Write(w, binary.BigEndian, uint32(len(data))); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func readFrame(r *bufio.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("proxy: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Client is a proxy client ("any MySQL-compatible client" in the
// paper's architecture).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a proxy.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proxy: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close drops the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Result is a client-side query result.
type Result struct {
	Cols []string
	Rows [][]sqlengine.Value
}

// Query runs one SQL statement through the proxy.
func (c *Client) Query(sql string) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.w, []byte(sql)); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	header, err := readFrame(c.r)
	if err != nil {
		return nil, err
	}
	h := string(header)
	if strings.HasPrefix(h, "ERR ") {
		return nil, fmt.Errorf("proxy: server error: %s", h[4:])
	}
	var ncols, nrows int
	if _, err := fmt.Sscanf(h, "OK %d %d", &ncols, &nrows); err != nil {
		return nil, fmt.Errorf("proxy: bad header %q", h)
	}
	res := &Result{}
	for i := 0; i < ncols; i++ {
		col, err := readFrame(c.r)
		if err != nil {
			return nil, err
		}
		res.Cols = append(res.Cols, string(col))
	}
	for i := 0; i < nrows; i++ {
		row := make([]sqlengine.Value, ncols)
		for j := 0; j < ncols; j++ {
			frame, err := readFrame(c.r)
			if err != nil {
				return nil, err
			}
			v, err := decodeValue(frame)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
