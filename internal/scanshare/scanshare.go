// Package scanshare implements shared scanning (convoy scheduling,
// paper section 4.3): when tables are too large to cache, multiple
// concurrent full-scan queries share a single sequential read of the
// table instead of each issuing its own, seek-inducing scan. The table
// is read in pieces; every query attached to the convoy processes each
// piece while it is in memory. A query may join mid-scan: it processes
// pieces from its join point, wraps around, and completes after seeing
// every piece exactly once.
//
// The paper had not yet implemented this ("Shared scanning is planned
// for implementation later this year", section 5) but designed Qserv
// around it; this package provides it plus the instrumentation the
// ablation benchmarks use (bytes read from "disk" with and without
// sharing).
package scanshare

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sqlengine"
)

// Scanner runs convoys over one table. It is safe for concurrent use.
type Scanner struct {
	table     *sqlengine.Table
	pieceRows int

	mu        sync.Mutex
	consumers map[*Ticket]bool
	running   bool
	pos       int // next piece index

	bytesRead  int64
	piecesRead int64
	scansSaved int64
}

// NewScanner creates a convoy scanner over a table. pieceRows is the
// number of rows per in-memory piece; it must be positive.
func NewScanner(table *sqlengine.Table, pieceRows int) (*Scanner, error) {
	if table == nil {
		return nil, fmt.Errorf("scanshare: nil table")
	}
	if pieceRows <= 0 {
		return nil, fmt.Errorf("scanshare: pieceRows must be positive, got %d", pieceRows)
	}
	return &Scanner{
		table:     table,
		pieceRows: pieceRows,
		consumers: map[*Ticket]bool{},
	}, nil
}

// pieces returns the number of pieces in the table.
func (s *Scanner) pieces() int {
	n := len(s.table.Rows)
	if n == 0 {
		return 0
	}
	return (n + s.pieceRows - 1) / s.pieceRows
}

// Table returns the table this scanner convoys over.
func (s *Scanner) Table() *sqlengine.Table { return s.table }

// Ticket tracks one query's membership in the convoy.
type Ticket struct {
	s         *Scanner
	process   func([]sqlengine.Row)
	remaining int
	done      chan struct{}
	completed bool        // done closed; guarded by s.mu
	abandoned atomic.Bool // query canceled; drop at the next piece boundary
}

// Wait blocks until the query has seen the whole table (or the ticket
// was abandoned).
func (t *Ticket) Wait() { <-t.done }

// Abandon marks the ticket so the convoy drops it at the next piece
// boundary without delivering further pieces — the query-cancellation
// path: the convoy (and the slots of its other members) is never
// stalled by a killed query, and a sole remaining consumer's abandon
// stops the scan after at most one more physical piece read. Wait
// unblocks once the convoy has dropped the ticket. Safe to call more
// than once and after completion.
func (t *Ticket) Abandon() {
	t.abandoned.Store(true)
	// A convoy that already delivered every piece (or an empty table's
	// pre-completed ticket) will never pass another piece boundary; the
	// completed flag makes the drop here idempotent with run()'s.
	t.s.mu.Lock()
	if _, live := t.s.consumers[t]; !live {
		t.complete()
	}
	t.s.mu.Unlock()
}

// complete closes done exactly once. Callers hold s.mu.
func (t *Ticket) complete() {
	if !t.completed {
		t.completed = true
		close(t.done)
	}
}

// Attach joins the convoy: process is invoked once for every piece of
// the table (in convoy order, starting wherever the scan currently is),
// from the scanner's goroutine. The returned ticket's Wait unblocks
// after the query has seen every piece exactly once.
func (s *Scanner) Attach(process func([]sqlengine.Row)) *Ticket {
	t, _ := s.attach(process)
	return t
}

// attach implements Attach; joined reports whether this consumer shared
// a scan already in flight.
func (s *Scanner) attach(process func([]sqlengine.Row)) (*Ticket, bool) {
	t := &Ticket{s: s, process: process, done: make(chan struct{})}
	s.mu.Lock()
	t.remaining = s.pieces()
	if t.remaining == 0 {
		t.complete()
		s.mu.Unlock()
		return t, false
	}
	joined := len(s.consumers) > 0
	if joined {
		// Joining a convoy in flight: the piece reads from here to this
		// query's completion are shared with the running scan.
		s.scansSaved++
	}
	s.consumers[t] = true
	if !s.running {
		s.running = true
		go s.run()
	}
	s.mu.Unlock()
	return t, joined
}

// Source adapts convoy membership to the pull-based piece iterator the
// SQL engine scans through (it implements sqlengine.ScanSource). The
// convoy's push cadence and the engine's pull cadence meet over an
// unbuffered channel, so the convoy advances at the pace of its
// slowest attached consumer — the paper's shared-scan discipline.
type Source struct {
	ch     chan []sqlengine.Row
	closed chan struct{}
	once   sync.Once
	ticket *Ticket
}

// NextPiece returns the next convoy piece; ok is false after the
// consumer has seen every piece exactly once.
func (src *Source) NextPiece() ([]sqlengine.Row, bool) {
	piece, ok := <-src.ch
	return piece, ok
}

// Close abandons the source: remaining pieces are discarded so the
// convoy is never stalled by a consumer that stopped reading. Safe to
// call more than once and after exhaustion.
func (src *Source) Close() { src.once.Do(func() { close(src.closed) }) }

// Detach is the cancellation form of Close: it unblocks any in-flight
// delivery and tells the convoy to drop this membership at the next
// piece boundary, so a killed query neither paces the convoy nor keeps
// it reading on its behalf. The Close ordering matters: a delivery
// blocked on src.ch must be released before the convoy can reach the
// boundary where the abandoned ticket is dropped.
func (src *Source) Detach() {
	src.Close()
	src.ticket.Abandon()
}

// AttachSource joins the convoy as a piece iterator. joined reports
// whether an in-flight scan was shared rather than a fresh one started.
func (s *Scanner) AttachSource() (src *Source, joined bool) {
	src = &Source{ch: make(chan []sqlengine.Row), closed: make(chan struct{})}
	var t *Ticket
	t, joined = s.attach(func(piece []sqlengine.Row) {
		select {
		case src.ch <- piece:
		case <-src.closed:
		}
	})
	src.ticket = t
	go func() {
		// The last process call returns before the ticket completes
		// (and an abandoned ticket receives no further process calls),
		// so closing here can never race a send.
		t.Wait()
		close(src.ch)
	}()
	return src, joined
}

// run is the convoy loop: read the next piece once, hand it to every
// attached query, advance circularly; stop when nobody is attached.
func (s *Scanner) run() {
	rowWidth := int64(s.table.Schema.RowWidth())
	for {
		s.mu.Lock()
		if len(s.consumers) == 0 {
			s.running = false
			s.mu.Unlock()
			return
		}
		np := s.pieces()
		if s.pos >= np {
			s.pos = 0
		}
		start := s.pos * s.pieceRows
		end := start + s.pieceRows
		if end > len(s.table.Rows) {
			end = len(s.table.Rows)
		}
		piece := s.table.Rows[start:end]
		s.pos++
		// One physical read, shared by every consumer.
		s.bytesRead += int64(len(piece)) * rowWidth
		s.piecesRead++
		members := make([]*Ticket, 0, len(s.consumers))
		for t := range s.consumers {
			members = append(members, t)
		}
		s.mu.Unlock()

		var finished []*Ticket
		for _, t := range members {
			if t.abandoned.Load() {
				// Dropped at the piece boundary: no delivery, and the
				// consumer stops counting toward the convoy's pace.
				finished = append(finished, t)
				continue
			}
			t.process(piece)
			if t.remaining--; t.remaining == 0 {
				finished = append(finished, t)
			}
		}
		if len(finished) > 0 {
			s.mu.Lock()
			for _, t := range finished {
				delete(s.consumers, t)
				t.complete()
			}
			s.mu.Unlock()
		}
	}
}

// BytesRead returns the total bytes physically read so far.
func (s *Scanner) BytesRead() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesRead
}

// PiecesRead returns the number of piece reads performed.
func (s *Scanner) PiecesRead() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.piecesRead
}

// ScansSaved counts queries that shared an in-flight scan rather than
// starting their own.
func (s *Scanner) ScansSaved() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scansSaved
}

// CountWhere attaches a counting query to the convoy: it counts rows
// satisfying pred and returns the count after the full pass.
func (s *Scanner) CountWhere(pred func(sqlengine.Row) bool) int64 {
	var mu sync.Mutex
	var n int64
	t := s.Attach(func(piece []sqlengine.Row) {
		local := int64(0)
		for _, r := range piece {
			if pred(r) {
				local++
			}
		}
		mu.Lock()
		n += local
		mu.Unlock()
	})
	t.Wait()
	return n
}

// IndependentScanBytes returns the bytes N independent (unshared) scans
// of the table would read — the baseline the paper's design argues
// against.
func IndependentScanBytes(table *sqlengine.Table, n int) int64 {
	return int64(n) * table.ByteSize()
}
