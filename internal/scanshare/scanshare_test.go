package scanshare

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sqlengine"
	"repro/internal/sqlparse"
)

func bigTable(t testing.TB, rows int) *sqlengine.Table {
	t.Helper()
	tbl := sqlengine.NewTable("T", sqlengine.Schema{
		{Name: "id", Type: sqlparse.TypeInt},
		{Name: "x", Type: sqlparse.TypeFloat},
	})
	batch := make([]sqlengine.Row, rows)
	for i := 0; i < rows; i++ {
		batch[i] = sqlengine.Row{int64(i), float64(i) * 0.5}
	}
	if err := tbl.Insert(batch...); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSingleQuerySeesAllRows(t *testing.T) {
	tbl := bigTable(t, 1000)
	s, err := NewScanner(tbl, 64)
	if err != nil {
		t.Fatal(err)
	}
	n := s.CountWhere(func(r sqlengine.Row) bool { return true })
	if n != 1000 {
		t.Fatalf("saw %d rows, want 1000", n)
	}
	if s.BytesRead() != tbl.ByteSize() {
		t.Errorf("bytes read = %d, want %d (exactly one pass)", s.BytesRead(), tbl.ByteSize())
	}
}

func TestEachConsumerSeesEachRowOnce(t *testing.T) {
	tbl := bigTable(t, 500)
	s, err := NewScanner(tbl, 32)
	if err != nil {
		t.Fatal(err)
	}
	const consumers = 8
	var wg sync.WaitGroup
	counts := make([]int64, consumers)
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seen := map[int64]int{}
			var mu sync.Mutex
			tk := s.Attach(func(piece []sqlengine.Row) {
				mu.Lock()
				for _, r := range piece {
					seen[r[0].(int64)]++
				}
				mu.Unlock()
			})
			tk.Wait()
			mu.Lock()
			defer mu.Unlock()
			for id, c := range seen {
				if c != 1 {
					t.Errorf("consumer %d saw row %d %d times", i, id, c)
				}
			}
			atomic.StoreInt64(&counts[i], int64(len(seen)))
		}(i)
	}
	wg.Wait()
	for i, c := range counts {
		if c != 500 {
			t.Errorf("consumer %d saw %d distinct rows", i, c)
		}
	}
}

func TestSharingReducesIO(t *testing.T) {
	// The core claim of section 4.3: k concurrent scans cost about one
	// scan of I/O, not k scans.
	tbl := bigTable(t, 2000)
	s, err := NewScanner(tbl, 50)
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	// Attach all k queries before waiting so they join one convoy
	// (Attach is non-blocking; a goroutine race would let early
	// finishers complete before later queries join).
	var tickets []*Ticket
	var mu sync.Mutex
	counts := make([]int64, k)
	for i := 0; i < k; i++ {
		i := i
		tickets = append(tickets, s.Attach(func(piece []sqlengine.Row) {
			mu.Lock()
			for _, r := range piece {
				if r[1].(float64) > 100 {
					counts[i]++
				}
			}
			mu.Unlock()
		}))
	}
	for _, tk := range tickets {
		tk.Wait()
	}
	shared := s.BytesRead()
	independent := IndependentScanBytes(tbl, k)
	// All k queries race to attach; in the worst case stragglers add a
	// wrap-around pass each, but total I/O must stay well under k
	// separate scans.
	if shared >= independent/2 {
		t.Errorf("shared I/O %d not much better than independent %d", shared, independent)
	}
	if s.BytesRead() < tbl.ByteSize() {
		t.Errorf("less than one full scan performed: %d", s.BytesRead())
	}
}

func TestMidScanJoinWrapsAround(t *testing.T) {
	tbl := bigTable(t, 1000)
	s, err := NewScanner(tbl, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Start a slow consumer to keep the convoy rolling.
	var slowStarted sync.WaitGroup
	slowStarted.Add(1)
	first := true
	tkSlow := s.Attach(func(piece []sqlengine.Row) {
		if first {
			first = false
			slowStarted.Done()
		}
		time.Sleep(100 * time.Microsecond)
	})
	slowStarted.Wait()
	// Join mid-scan; must still see all 1000 rows exactly once.
	var n int64
	tk := s.Attach(func(piece []sqlengine.Row) {
		atomic.AddInt64(&n, int64(len(piece)))
	})
	tk.Wait()
	if got := atomic.LoadInt64(&n); got != 1000 {
		t.Errorf("mid-scan joiner saw %d rows", got)
	}
	tkSlow.Wait()
	if s.ScansSaved() == 0 {
		t.Error("mid-scan join not counted as a saved scan")
	}
}

func TestEmptyTable(t *testing.T) {
	tbl := sqlengine.NewTable("E", sqlengine.Schema{{Name: "a", Type: sqlparse.TypeInt}})
	s, err := NewScanner(tbl, 10)
	if err != nil {
		t.Fatal(err)
	}
	n := s.CountWhere(func(sqlengine.Row) bool { return true })
	if n != 0 || s.BytesRead() != 0 {
		t.Errorf("empty table: n=%d bytes=%d", n, s.BytesRead())
	}
}

func TestScannerStopsWhenIdle(t *testing.T) {
	tbl := bigTable(t, 100)
	s, err := NewScanner(tbl, 10)
	if err != nil {
		t.Fatal(err)
	}
	s.CountWhere(func(sqlengine.Row) bool { return true })
	before := s.PiecesRead()
	time.Sleep(20 * time.Millisecond)
	if s.PiecesRead() != before {
		t.Error("scanner kept reading with no consumers")
	}
	// A new consumer restarts it.
	n := s.CountWhere(func(sqlengine.Row) bool { return true })
	if n != 100 {
		t.Errorf("restart: n=%d", n)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewScanner(nil, 10); err == nil {
		t.Error("nil table should fail")
	}
	tbl := bigTable(t, 10)
	if _, err := NewScanner(tbl, 0); err == nil {
		t.Error("zero piece size should fail")
	}
}

func BenchmarkSharedScan8Queries(b *testing.B) {
	tbl := bigTable(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := NewScanner(tbl, 256)
		var wg sync.WaitGroup
		for k := 0; k < 8; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.CountWhere(func(r sqlengine.Row) bool { return r[1].(float64) > 500 })
			}()
		}
		wg.Wait()
	}
}

func BenchmarkIndependentScan8Queries(b *testing.B) {
	tbl := bigTable(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for k := 0; k < 8; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Each query runs its own private scan.
				s, _ := NewScanner(tbl, 256)
				s.CountWhere(func(r sqlengine.Row) bool { return r[1].(float64) > 500 })
			}()
		}
		wg.Wait()
	}
}

// drainSource pulls every piece from a source, returning the set of ids
// seen and how many times each appeared.
func drainSource(src *Source) map[int64]int {
	seen := map[int64]int{}
	for {
		piece, ok := src.NextPiece()
		if !ok {
			return seen
		}
		for _, r := range piece {
			seen[r[0].(int64)]++
		}
	}
}

func TestSourceMidScanJoinExactlyOnce(t *testing.T) {
	const rows, piece = 1000, 64
	tbl := bigTable(t, rows)
	s, err := NewScanner(tbl, piece)
	if err != nil {
		t.Fatal(err)
	}

	srcA, joinedA := s.AttachSource()
	if joinedA {
		t.Error("first source cannot share an in-flight scan")
	}
	// Consume a few pieces so the convoy position is mid-table, then
	// join a second source: it must start at the current position, wrap
	// around, and still see every row exactly once.
	for i := 0; i < 3; i++ {
		if _, ok := srcA.NextPiece(); !ok {
			t.Fatal("source A exhausted too early")
		}
	}
	srcB, joinedB := s.AttachSource()
	if !joinedB {
		t.Error("mid-scan attach must report a shared scan")
	}

	var wg sync.WaitGroup
	var seenA, seenB map[int64]int
	wg.Add(2)
	go func() { defer wg.Done(); rest := drainSource(srcA); seenA = rest }()
	go func() { defer wg.Done(); seenB = drainSource(srcB) }()
	wg.Wait()

	// A consumed 3 pieces before the goroutine drained the rest.
	if got := len(seenA); got != rows-3*piece {
		t.Errorf("source A remainder saw %d rows, want %d", got, rows-3*piece)
	}
	if got := len(seenB); got != rows {
		t.Errorf("source B saw %d distinct rows, want %d", got, rows)
	}
	for id, n := range seenB {
		if n != 1 {
			t.Fatalf("source B saw row %d %d times", id, n)
		}
	}
	if s.ScansSaved() != 1 {
		t.Errorf("ScansSaved = %d, want 1", s.ScansSaved())
	}
}

func TestSourceCloseMidScanDoesNotStallConvoy(t *testing.T) {
	tbl := bigTable(t, 2000)
	s, err := NewScanner(tbl, 32)
	if err != nil {
		t.Fatal(err)
	}
	quitter, _ := s.AttachSource()
	if _, ok := quitter.NextPiece(); !ok {
		t.Fatal("no first piece")
	}
	quitter.Close()
	quitter.Close() // idempotent

	// A well-behaved source attached afterwards must still complete.
	src, _ := s.AttachSource()
	done := make(chan map[int64]int, 1)
	go func() { done <- drainSource(src) }()
	select {
	case seen := <-done:
		if len(seen) != 2000 {
			t.Errorf("saw %d rows, want 2000", len(seen))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("convoy stalled by an abandoned source")
	}
}

// TestAbandonDropsTicketAtPieceBoundary kills one convoy member
// mid-scan: the abandoned ticket's Wait unblocks promptly, the other
// member still sees every row exactly once, and the convoy does not
// keep reading for the dead query once it is the last consumer.
func TestAbandonDropsTicketAtPieceBoundary(t *testing.T) {
	tbl := bigTable(t, 2000)
	s, err := NewScanner(tbl, 32)
	if err != nil {
		t.Fatal(err)
	}

	// Throttled survivor paces the convoy so the abandon lands mid-scan.
	var survivorRows atomic.Int64
	survivor := s.Attach(func(piece []sqlengine.Row) {
		survivorRows.Add(int64(len(piece)))
		time.Sleep(100 * time.Microsecond)
	})

	var victimRows atomic.Int64
	victim := s.Attach(func(piece []sqlengine.Row) { victimRows.Add(int64(len(piece))) })
	for victimRows.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	victim.Abandon()
	done := make(chan struct{})
	go func() { victim.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned ticket's Wait never unblocked")
	}
	droppedAt := victimRows.Load()
	if droppedAt >= 2000 {
		t.Errorf("victim saw the whole table (%d rows) despite the abandon", droppedAt)
	}

	survivor.Wait()
	if survivorRows.Load() != 2000 {
		t.Errorf("survivor saw %d rows, want 2000", survivorRows.Load())
	}
	// No further delivery after the drop boundary: at most one piece
	// could have been in flight when Abandon was called.
	if victimRows.Load() > droppedAt {
		t.Errorf("victim kept receiving pieces after the drop: %d -> %d", droppedAt, victimRows.Load())
	}
}

// TestAbandonLastConsumerStopsScan abandons the only consumer: the
// convoy must stop reading instead of finishing the pass for a dead
// query.
func TestAbandonLastConsumerStopsScan(t *testing.T) {
	tbl := bigTable(t, 4000)
	s, err := NewScanner(tbl, 16)
	if err != nil {
		t.Fatal(err)
	}
	var rows atomic.Int64
	tk := s.Attach(func(piece []sqlengine.Row) {
		rows.Add(int64(len(piece)))
		time.Sleep(100 * time.Microsecond)
	})
	for rows.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	tk.Abandon()
	tk.Wait()
	if s.BytesRead() >= tbl.ByteSize() {
		t.Errorf("convoy read %d bytes of a %d-byte table for a dead query", s.BytesRead(), tbl.ByteSize())
	}
	// Abandon after completion is a no-op.
	tk.Abandon()

	// The scanner is reusable afterwards.
	if n := s.CountWhere(func(sqlengine.Row) bool { return true }); n != 4000 {
		t.Errorf("post-abandon scan saw %d rows", n)
	}
}

// TestSourceDetachUnblocksBlockedDelivery kills a source whose engine
// side stopped pulling while the convoy is mid-delivery: Detach must
// release the blocked process call and drop the membership.
func TestSourceDetachUnblocksBlockedDelivery(t *testing.T) {
	tbl := bigTable(t, 1000)
	s, err := NewScanner(tbl, 16)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := s.AttachSource()
	if _, ok := src.NextPiece(); !ok {
		t.Fatal("no first piece")
	}
	// Stop pulling; the convoy will block delivering the next piece.
	time.Sleep(5 * time.Millisecond)
	src.Detach()

	// A fresh consumer must still complete: the convoy was not wedged.
	done := make(chan map[int64]int, 1)
	fresh, _ := s.AttachSource()
	go func() { done <- drainSource(fresh) }()
	select {
	case seen := <-done:
		if len(seen) != 1000 {
			t.Errorf("saw %d rows, want 1000", len(seen))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("convoy wedged by a detached source")
	}
}
