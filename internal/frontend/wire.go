// Package frontend is the connection-scale SQL frontend of the system:
// the tier between "any client" and the czar's session API (the role
// the MySQL Proxy plays in paper section 5.4, rebuilt for streaming and
// admission control). It serves two wire protocols over one listener:
//
// Protocol v1 (legacy, kept for back-compat): the client's first frame
// is already a query; the server buffers the entire result and answers
// "OK <ncols> <nrows>", ncols column frames, then ncols x nrows value
// frames. The row count in the header is v1's defining flaw: the
// server cannot emit a single byte before the final row exists, so
// first-row latency equals completion latency — and once the header is
// out there is no in-band way to report an error.
//
// Protocol v2 (streaming): the client's first frame is a handshake
// (version byte 0x02 + magic + user + database); every subsequent
// exchange is row-count-free:
//
//	client:  Q <sql>                     (also K = kill in-flight, P = ping)
//	server:  C <ncols> <name>...         column header — sent at plan time
//	         R <value>...                one frame per row, as rows merge
//	         ...
//	         D <nrows>    on success, or
//	         E <message>  on failure — legal INSTEAD OF C, or mid-stream
//	                      after any number of R frames
//
// Because the header carries columns only, the first row leaves the
// server as soon as the first chunk merges — hours before a long scan
// finishes — and a worker failure after the first byte is still
// reportable. Admission shedding rides the same E frame ("busy: ...")
// without costing the connection.
//
// This file is the codec: framing, the handshake, and the value/row/
// column encodings. Every decoder treats its input as hostile (the
// fuzz targets in fuzz_test.go hold them to that).
package frontend

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sqlengine"
)

// maxFrame bounds one frame (64 MiB), read and written.
const maxFrame = 64 << 20

// Frame tags. Client-to-server: tagQuery, tagKill, tagPing. Server-to-
// client: tagCols, tagRow, tagDone, tagErr, tagPing (pong).
const (
	tagQuery = 'Q'
	tagKill  = 'K'
	tagPing  = 'P'
	tagCols  = 'C'
	tagRow   = 'R'
	tagDone  = 'D'
	tagErr   = 'E'
)

// hsVersion2 is the version byte opening a v2 handshake frame. A v1
// client's first frame is SQL text, which never begins with a 0x02
// control byte — that single byte is what keeps v1 reachable on the
// same port.
const hsVersion2 = 0x02

// hsMagic follows the version byte, guarding against a binary client
// of some other protocol that happens to lead with 0x02.
var hsMagic = []byte("QSV2")

// writeFrame writes one length-prefixed frame.
func writeFrame(w *bufio.Writer, data []byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("frontend: frame of %d bytes exceeds limit", len(data))
	}
	if err := binary.Write(w, binary.BigEndian, uint32(len(data))); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// readFrame reads one length-prefixed frame, rejecting hostile lengths
// before allocating.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("frontend: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// encodeHandshake renders the v2 client hello: version byte, magic,
// then NUL-separated user and database.
func encodeHandshake(user, db string) []byte {
	b := make([]byte, 0, 1+len(hsMagic)+2+len(user)+len(db))
	b = append(b, hsVersion2)
	b = append(b, hsMagic...)
	b = append(b, 0)
	b = append(b, user...)
	b = append(b, 0)
	b = append(b, db...)
	return b
}

// parseHandshake classifies a connection's first frame. v2 is false
// when the frame does not open with the version byte — the frame is a
// v1 query and must be served as such. err is non-nil only for a frame
// that claims v2 and is malformed (bad magic, missing separators);
// such a client gets an error and the connection closes.
func parseHandshake(b []byte) (user, db string, v2 bool, err error) {
	if len(b) == 0 || b[0] != hsVersion2 {
		return "", "", false, nil
	}
	rest := b[1:]
	if len(rest) < len(hsMagic)+2 || !bytes.Equal(rest[:len(hsMagic)], hsMagic) {
		return "", "", true, fmt.Errorf("frontend: malformed v2 handshake")
	}
	rest = rest[len(hsMagic):]
	if rest[0] != 0 {
		return "", "", true, fmt.Errorf("frontend: malformed v2 handshake")
	}
	userBytes, dbBytes, ok := bytes.Cut(rest[1:], []byte{0})
	if !ok {
		return "", "", true, fmt.Errorf("frontend: malformed v2 handshake")
	}
	if bytes.IndexByte(dbBytes, 0) >= 0 {
		return "", "", true, fmt.Errorf("frontend: malformed v2 handshake")
	}
	return string(userBytes), string(dbBytes), true, nil
}

// encodeValue renders one SQL value: a single 0x00 byte for NULL, or a
// type tag ('i'nt, 'f'loat, 's'tring) followed by the textual form.
// Shared verbatim with protocol v1 (it predates v2).
func encodeValue(v sqlengine.Value) []byte {
	if sqlengine.IsNull(v) {
		return []byte{0}
	}
	switch x := v.(type) {
	case int64:
		return []byte("i" + strconv.FormatInt(x, 10))
	case float64:
		return []byte("f" + strconv.FormatFloat(x, 'g', -1, 64))
	case string:
		return []byte("s" + x)
	default:
		return []byte("s" + sqlengine.FormatValue(v))
	}
}

// decodeValue parses one encoded value.
func decodeValue(b []byte) (sqlengine.Value, error) {
	if len(b) == 1 && b[0] == 0 {
		return nil, nil
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("frontend: empty value frame")
	}
	body := string(b[1:])
	switch b[0] {
	case 'i':
		return strconv.ParseInt(body, 10, 64)
	case 'f':
		return strconv.ParseFloat(body, 64)
	case 's':
		return body, nil
	default:
		return nil, fmt.Errorf("frontend: bad value tag %q", b[0])
	}
}

// encodeCols renders the v2 column-header frame: tag, column count,
// then each name length-prefixed.
func encodeCols(cols []string) []byte {
	b := make([]byte, 0, 16)
	b = append(b, tagCols)
	b = binary.AppendUvarint(b, uint64(len(cols)))
	for _, c := range cols {
		b = binary.AppendUvarint(b, uint64(len(c)))
		b = append(b, c...)
	}
	return b
}

// decodeCols parses a column-header frame body (tag already stripped).
// Counts and lengths are untrusted: every claim is checked against the
// bytes actually present before anything is allocated from it.
func decodeCols(b []byte) ([]string, error) {
	n, taken := binary.Uvarint(b)
	if taken <= 0 {
		return nil, fmt.Errorf("frontend: bad column count")
	}
	b = b[taken:]
	if n > uint64(len(b)) { // each column costs >= 1 byte of length
		return nil, fmt.Errorf("frontend: column count %d exceeds frame", n)
	}
	cols := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, taken := binary.Uvarint(b)
		if taken <= 0 || l > uint64(len(b)-taken) {
			return nil, fmt.Errorf("frontend: bad column length")
		}
		b = b[taken:]
		cols = append(cols, string(b[:l]))
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("frontend: %d trailing bytes after columns", len(b))
	}
	return cols, nil
}

// encodeRow renders one row frame: tag, then each value length-prefixed
// in the encodeValue encoding.
func encodeRow(row []sqlengine.Value) []byte {
	b := make([]byte, 0, 16+8*len(row))
	b = append(b, tagRow)
	for _, v := range row {
		ev := encodeValue(v)
		b = binary.AppendUvarint(b, uint64(len(ev)))
		b = append(b, ev...)
	}
	return b
}

// decodeRow parses a row frame body (tag already stripped) into ncols
// values; ncols comes from the preceding column header, so a row frame
// of the wrong width is an error, not a short row.
func decodeRow(b []byte, ncols int) ([]sqlengine.Value, error) {
	row := make([]sqlengine.Value, 0, ncols)
	for len(b) > 0 {
		l, taken := binary.Uvarint(b)
		if taken <= 0 || l > uint64(len(b)-taken) {
			return nil, fmt.Errorf("frontend: bad value length")
		}
		b = b[taken:]
		v, err := decodeValue(b[:l])
		if err != nil {
			return nil, err
		}
		row = append(row, v)
		b = b[l:]
	}
	if len(row) != ncols {
		return nil, fmt.Errorf("frontend: row of %d values, header declared %d", len(row), ncols)
	}
	return row, nil
}

// DoneStats are the per-query accounting figures riding the success
// trailer: appended as optional uvarints after the row count, so an
// old client reading only the count still interoperates, and a new
// client reading an old server sees zeros.
type DoneStats struct {
	ElapsedNS   int64 // end-to-end query time on the czar
	Chunks      int64 // chunk queries dispatched
	BytesMerged int64 // result bytes folded into the czar merge
}

// encodeDone renders the success trailer: the streamed row count, then
// the optional accounting uvarints.
func encodeDone(rows int64, st DoneStats) []byte {
	b := make([]byte, 0, 10)
	b = append(b, tagDone)
	b = binary.AppendUvarint(b, uint64(rows))
	b = binary.AppendUvarint(b, uint64(st.ElapsedNS))
	b = binary.AppendUvarint(b, uint64(st.Chunks))
	return binary.AppendUvarint(b, uint64(st.BytesMerged))
}

// decodeDone parses a trailer frame body (tag already stripped). Only
// the row count is mandatory; any further bytes must decode as whole
// uvarints, filling DoneStats fields in order — unknown trailing
// uvarints from a future server are skipped, truncated ones are an
// error (hostile input, not forward compatibility).
func decodeDone(b []byte) (int64, DoneStats, error) {
	n, taken := binary.Uvarint(b)
	if taken <= 0 {
		return 0, DoneStats{}, fmt.Errorf("frontend: bad done trailer")
	}
	b = b[taken:]
	var st DoneStats
	for i := 0; len(b) > 0; i++ {
		v, taken := binary.Uvarint(b)
		if taken <= 0 {
			return 0, DoneStats{}, fmt.Errorf("frontend: bad done trailer")
		}
		b = b[taken:]
		switch i {
		case 0:
			st.ElapsedNS = int64(v)
		case 1:
			st.Chunks = int64(v)
		case 2:
			st.BytesMerged = int64(v)
		}
	}
	return int64(n), st, nil
}
