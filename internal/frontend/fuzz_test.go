package frontend

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/sqlengine"
)

// The wire decoders parse bytes from arbitrary clients: every target
// here holds them to "reject or round-trip" — hostile input may only
// produce an error, never a panic, an unbounded allocation, or a value
// that re-encodes differently. Seed corpora (including hand-written
// hostile frames) live under testdata/fuzz/ and also run as plain
// tests in `make test`; `make fuzz-smoke` runs each target briefly.

func FuzzFrameRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})           // 4 GiB length claim
	f.Add([]byte{0x04, 0x00, 0x00, 0x00})           // 64 MiB + 1 boundary
	f.Add([]byte{0, 0, 0, 0})                       // empty frame
	f.Add([]byte{0, 0, 0, 9, 'Q', 'S', 'E', 'L'})   // length exceeds bytes present
	f.Add([]byte{0, 0, 0, 2, 'P', 'x', 0, 0, 0, 1}) // trailing second frame
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := writeFrame(bw, frame); err != nil {
			t.Fatalf("re-encoding an accepted %d-byte frame failed: %v", len(frame), err)
		}
		bw.Flush()
		again, err := readFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("re-reading a written frame failed: %v", err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("frame round trip diverged: %q -> %q", frame, again)
		}
	})
}

func FuzzValueDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0}) // NULL
	f.Add([]byte("i12345"))
	f.Add([]byte("i99999999999999999999999999")) // overflows int64
	f.Add([]byte("f6.02e23"))
	f.Add([]byte("fNaN"))
	f.Add([]byte("s"))
	f.Add([]byte("s\x00embedded\x00nuls"))
	f.Add([]byte("zunknown tag"))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := decodeValue(data)
		if err != nil {
			return
		}
		again, err := decodeValue(encodeValue(v))
		if err != nil {
			t.Fatalf("re-decoding an accepted value failed: %v", err)
		}
		if sqlengine.FormatValue(v) != sqlengine.FormatValue(again) {
			t.Fatalf("value round trip diverged: %v -> %v", v, again)
		}
	})
}

func FuzzHandshake(f *testing.F) {
	f.Add([]byte("SELECT 1")) // v1: first frame is SQL
	f.Add(encodeHandshake("alice", "LSST"))
	f.Add(encodeHandshake("", ""))
	f.Add([]byte{hsVersion2})           // version byte, nothing else
	f.Add([]byte("\x02QSVX\x00u\x00d")) // wrong magic
	f.Add([]byte("\x02QSV2no-separator"))
	f.Add([]byte("\x02QSV2\x00only-user"))       // missing db separator
	f.Add([]byte("\x02QSV2\x00u\x00d\x00extra")) // NUL inside db
	f.Fuzz(func(t *testing.T, data []byte) {
		user, db, v2, err := parseHandshake(data)
		if !v2 && err != nil {
			t.Fatalf("a v1 frame must not error: %v", err)
		}
		if !v2 || err != nil {
			return
		}
		u2, d2, isV2, err := parseHandshake(encodeHandshake(user, db))
		if err != nil || !isV2 {
			t.Fatalf("re-parsing an accepted handshake failed: v2=%v err=%v", isV2, err)
		}
		if u2 != user || d2 != db {
			t.Fatalf("handshake round trip diverged: %q/%q -> %q/%q", user, db, u2, d2)
		}
	})
}

func FuzzColsDecode(f *testing.F) {
	f.Add(encodeCols(nil)[1:])
	f.Add(encodeCols([]string{"objectId", "ra_PS"})[1:])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}) // huge column count
	f.Add([]byte{0x01, 0xff, 'x'})              // column length exceeds frame
	f.Add([]byte{0x01, 0x01, 'c', 'c'})         // trailing bytes
	f.Fuzz(func(t *testing.T, data []byte) {
		cols, err := decodeCols(data)
		if err != nil {
			return
		}
		again, err := decodeCols(encodeCols(cols)[1:])
		if err != nil {
			t.Fatalf("re-decoding an accepted header failed: %v", err)
		}
		if len(again) != len(cols) {
			t.Fatalf("column round trip diverged: %v -> %v", cols, again)
		}
		for i := range cols {
			if cols[i] != again[i] {
				t.Fatalf("column round trip diverged: %v -> %v", cols, again)
			}
		}
	})
}

func FuzzRowDecode(f *testing.F) {
	f.Add(encodeRow([]sqlengine.Value{int64(7), nil, "x"})[1:], uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{}, uint8(200))                    // width mismatch
	f.Add([]byte{0xff, 0xff, 0x7f, 'i'}, uint8(1)) // value length exceeds frame
	f.Add([]byte{0x01, 'z'}, uint8(1))             // bad value tag inside a row
	f.Fuzz(func(t *testing.T, data []byte, ncols uint8) {
		row, err := decodeRow(data, int(ncols))
		if err != nil {
			return
		}
		if len(row) != int(ncols) {
			t.Fatalf("accepted row has %d values, want %d", len(row), ncols)
		}
		again, err := decodeRow(encodeRow(row)[1:], len(row))
		if err != nil {
			t.Fatalf("re-decoding an accepted row failed: %v", err)
		}
		for i := range row {
			if sqlengine.FormatValue(row[i]) != sqlengine.FormatValue(again[i]) {
				t.Fatalf("row round trip diverged at %d: %v -> %v", i, row[i], again[i])
			}
		}
	})
}
