package frontend

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/czar"
	"repro/internal/member"
	"repro/internal/qcache"
	"repro/internal/sqlengine"
	"repro/internal/telemetry"
)

// Backend is the Submit-shaped streaming entry point the frontend
// drives: the czar's session API. *czar.Czar implements it directly;
// test fakes mint equivalent handles with czar.NewQueryHandle.
type Backend interface {
	// Submit starts an asynchronous query session. The context governs
	// the whole query: canceling it kills the query end-to-end (czar
	// registry, fabric transactions, worker scan lanes).
	Submit(ctx context.Context, sql string, opts czar.Options) (*czar.Query, error)
	// Running lists the backend's in-flight queries.
	Running() []czar.QueryInfo
	// Kill cancels an in-flight query by id.
	Kill(id int64) bool
	// ClusterStatus reports cluster availability; ok is false when the
	// backend has no membership subsystem wired.
	ClusterStatus() (member.Status, bool)
	// CacheStats reports the backend's result-cache counters; ok is
	// false when no result cache is installed.
	CacheStats() (qcache.Stats, bool)
	// MetricsText renders the backend's metrics registry in Prometheus
	// text exposition format; ok is false when telemetry is disabled.
	MetricsText() (string, bool)
	// Profile renders a finished query's retained span trace; ok is
	// false when the id was never traced or has been evicted.
	Profile(id int64) (string, bool)
	// Profiles lists retained trace summaries, newest first, up to n.
	Profiles(n int) []string
}

// Config bounds the frontend's concurrency (see admission).
type Config struct {
	// MaxSessions caps concurrently executing query sessions across all
	// connections and users; 0 means unlimited.
	MaxSessions int
	// PerUserSessions caps one user's concurrent sessions (admitted or
	// queued); 0 means unlimited.
	PerUserSessions int
	// SessionQueueDepth bounds the FIFO queue of sessions waiting for a
	// global slot; a full queue sheds with "busy". 0 means no queue:
	// anything over MaxSessions sheds immediately.
	SessionQueueDepth int
	// Metrics, when set, exports the frontend's admission series
	// (qserv_frontend_*) into the registry.
	Metrics *telemetry.Registry
}

// Server serves protocols v1 and v2 over one TCP listener,
// round-robining query sessions across backends (section 7.6's
// multi-master load balancing).
type Server struct {
	backends []Backend
	adm      *admission
	next     atomic.Int64
	ln       net.Listener
	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]bool
	wg       sync.WaitGroup
}

// Serve starts a frontend on addr over one or more backends.
func Serve(addr string, cfg Config, backends ...Backend) (*Server, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("frontend: no backends")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: listen: %w", err)
	}
	s := &Server{
		backends: backends,
		adm:      newAdmission(cfg.MaxSessions, cfg.PerUserSessions, cfg.SessionQueueDepth),
		ln:       ln,
		conns:    map[net.Conn]bool{},
	}
	s.registerMetrics(cfg.Metrics)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// registerMetrics exports the admission controller into the registry;
// every series samples the same stats snapshot at scrape time.
func (s *Server) registerMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	admVal := func(pick func(st Stats) int64) func() int64 {
		return func() int64 { return pick(s.adm.stats()) }
	}
	reg.GaugeFunc("qserv_frontend_active_sessions", "query sessions currently admitted",
		admVal(func(st Stats) int64 { return int64(st.Active) }))
	reg.GaugeFunc("qserv_frontend_queued_sessions", "query sessions waiting for a slot",
		admVal(func(st Stats) int64 { return int64(st.Queued) }))
	reg.GaugeFunc("qserv_frontend_session_users", "distinct users with admitted or queued sessions",
		admVal(func(st Stats) int64 { return int64(st.Users) }))
	reg.CounterFunc("qserv_frontend_admissions_total", "lifetime sessions admitted",
		admVal(func(st Stats) int64 { return st.Admitted }))
	reg.CounterFunc("qserv_frontend_queued_total", "lifetime sessions that had to queue",
		admVal(func(st Stats) int64 { return st.EverQueued }))
	reg.CounterFunc("qserv_frontend_shed_total", "lifetime sessions rejected with busy",
		admVal(func(st Stats) int64 { return st.Shed }))
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns the admission controller's current snapshot.
func (s *Server) Stats() Stats { return s.adm.stats() }

// Close stops the server, dropping every connection (which kills the
// connections' in-flight queries through their contexts).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// pick round-robins the next query session across backends.
func (s *Server) pick() Backend {
	return s.backends[int(s.next.Add(1)-1)%len(s.backends)]
}

// serveConn dispatches on the connection's first frame: a v2 handshake
// (leading 0x02 version byte) selects the streaming protocol; anything
// else is already a v1 query and the connection is served as legacy v1.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	first, err := readFrame(r)
	if err != nil {
		return
	}
	user, db, v2, err := parseHandshake(first)
	if !v2 {
		s.serveV1(r, w, string(first))
		return
	}
	if err != nil {
		writeFrame(w, []byte("ERR "+err.Error()))
		w.Flush()
		return
	}
	_ = db // reserved: the engine has a single database today
	if err := writeFrame(w, []byte("OK2")); err != nil {
		return
	}
	if err := w.Flush(); err != nil {
		return
	}
	s.serveV2(conn, r, w, user)
}

// ---------- protocol v2 ----------

// v2req is one client frame the reader goroutine hands to the session
// loop (kill frames are handled inline by the reader instead).
type v2req struct {
	kind byte
	sql  string
}

// serveV2 runs a v2 session. A dedicated reader goroutine owns the
// socket's read side so the connection stays responsive while a query
// streams: kill frames cancel the in-flight query inline, and a read
// error — the client dropped — cancels the per-connection context,
// which parents every query context, so a disconnect kills the
// in-flight query end-to-end (czar registry, fabric, worker lanes)
// without any extra bookkeeping.
func (s *Server) serveV2(conn net.Conn, r *bufio.Reader, w *bufio.Writer, user string) {
	connCtx, connCancel := context.WithCancelCause(context.Background())
	defer connCancel(fmt.Errorf("frontend: connection closed"))

	var kill atomic.Pointer[context.CancelCauseFunc]
	reqs := make(chan v2req, 8)
	go func() {
		defer close(reqs)
		for {
			f, err := readFrame(r)
			if err != nil {
				connCancel(fmt.Errorf("frontend: client disconnected: %w", err))
				return
			}
			if len(f) == 0 {
				connCancel(fmt.Errorf("frontend: empty frame"))
				return
			}
			switch f[0] {
			case tagKill:
				if c := kill.Load(); c != nil {
					(*c)(context.Canceled)
				}
			case tagQuery, tagPing:
				select {
				case reqs <- v2req{kind: f[0], sql: string(f[1:])}:
				case <-connCtx.Done():
					return
				}
			default:
				connCancel(fmt.Errorf("frontend: bad frame tag %q", f[0]))
				return
			}
		}
	}()

	for {
		var req v2req
		var ok bool
		select {
		case req, ok = <-reqs:
			if !ok {
				return
			}
		case <-connCtx.Done():
			return
		}
		switch req.kind {
		case tagPing:
			if writeFrame(w, []byte{tagPing}) != nil || w.Flush() != nil {
				return
			}
		case tagQuery:
			if !s.runV2Query(connCtx, w, user, req.sql, &kill) {
				return
			}
		}
	}
}

// runV2Query runs one v2 query session and streams its result; false
// means the connection is unusable (write failed) and must close.
func (s *Server) runV2Query(connCtx context.Context, w *bufio.Writer, user, sql string, kill *atomic.Pointer[context.CancelCauseFunc]) bool {
	sendErr := func(err error) bool {
		return writeFrame(w, append([]byte{tagErr}, err.Error()...)) == nil && w.Flush() == nil
	}

	// Admin commands are cheap introspection; they bypass admission so
	// an operator can still see a saturated frontend.
	if cols, rows, handled, err := s.admin(sql); handled {
		if err != nil {
			return sendErr(err)
		}
		if writeFrame(w, encodeCols(cols)) != nil {
			return false
		}
		for _, row := range rows {
			if writeFrame(w, encodeRow(row)) != nil {
				return false
			}
		}
		return writeFrame(w, encodeDone(int64(len(rows)), DoneStats{})) == nil && w.Flush() == nil
	}

	if err := s.adm.acquire(user, connCtx.Done()); err != nil {
		return sendErr(err)
	}
	defer s.adm.release(user)

	qctx, qcancel := context.WithCancelCause(connCtx)
	defer qcancel(nil)
	kill.Store(&qcancel)
	defer kill.Store(nil)

	q, err := s.pick().Submit(qctx, sql, czar.Options{})
	if err != nil {
		return sendErr(err)
	}
	cols, err := q.Columns(qctx)
	if err != nil {
		return sendErr(err)
	}
	if writeFrame(w, encodeCols(cols)) != nil {
		return false
	}
	// Stream rows as the merge pipeline produces them, flushing only
	// before parking on a slow producer — first-row latency tracks the
	// first chunk's merge, not the scan's completion, without a syscall
	// per row when rows are already buffered.
	var rows int64
	it := q.Rows()
	for {
		if !it.Ready() && w.Flush() != nil {
			return false
		}
		row, ok := it.Next()
		if !ok {
			break
		}
		if writeFrame(w, encodeRow(row)) != nil {
			return false
		}
		rows++
	}
	res, err := q.Wait(context.Background())
	if err != nil {
		// Mid-stream failure (worker died, query killed, client quota
		// deadline): the error frame is legal after any number of row
		// frames — the defining fix over v1's silent truncation.
		return sendErr(err)
	}
	st := DoneStats{
		ElapsedNS:   res.Elapsed.Nanoseconds(),
		Chunks:      int64(res.ChunksDispatched),
		BytesMerged: res.BytesMerged,
	}
	return writeFrame(w, encodeDone(rows, st)) == nil && w.Flush() == nil
}

// ---------- protocol v1 (legacy) ----------

// serveV1 serves the legacy buffered protocol: one query per frame,
// answered with "OK <ncols> <nrows>" (so the whole result must exist
// before the first byte — v1 cannot stream by construction) or "ERR
// <message>". firstSQL is the already-read first frame. v1 sessions
// pass through the same admission controller under the synthetic user
// "(v1)"; a dropped v1 connection is only noticed at the next write,
// so its in-flight query runs to completion (pinned by tests; use v2).
func (s *Server) serveV1(r *bufio.Reader, w *bufio.Writer, firstSQL string) {
	sql := firstSQL
	for {
		if !s.runV1Query(w, sql) {
			return
		}
		sqlBytes, err := readFrame(r)
		if err != nil {
			return
		}
		sql = string(sqlBytes)
	}
}

func (s *Server) runV1Query(w *bufio.Writer, sql string) bool {
	var cols []string
	var rows [][]sqlengine.Value
	var qerr error
	if acols, arows, handled, aerr := s.admin(sql); handled {
		cols, rows, qerr = acols, arows, aerr
	} else if qerr = s.adm.acquire("(v1)", nil); qerr == nil {
		var q *czar.Query
		q, qerr = s.pick().Submit(context.Background(), sql, czar.Options{})
		if qerr == nil {
			var res *czar.QueryResult
			res, qerr = q.Wait(context.Background())
			if qerr == nil {
				cols = res.Cols
				rows = make([][]sqlengine.Value, len(res.Rows))
				for i, row := range res.Rows {
					rows[i] = row
				}
			}
		}
		s.adm.release("(v1)")
	}
	if qerr != nil {
		writeFrame(w, []byte("ERR "+qerr.Error()))
		return w.Flush() == nil
	}
	header := fmt.Sprintf("OK %d %d", len(cols), len(rows))
	if writeFrame(w, []byte(header)) != nil {
		return false
	}
	for _, c := range cols {
		if writeFrame(w, []byte(c)) != nil {
			return false
		}
	}
	for _, row := range rows {
		for _, v := range row {
			if writeFrame(w, encodeValue(v)) != nil {
				return false
			}
		}
	}
	return w.Flush() == nil
}

// ---------- admin commands ----------

// admin intercepts the query-management commands — `SHOW PROCESSLIST`,
// `SHOW WORKERS`, `SHOW REPAIRS`, `SHOW FRONTEND`, `SHOW METRICS`,
// `SHOW PROFILE [<id>]`, and `KILL <id>` — before backend dispatch,
// since they address every czar behind the frontend, not whichever the
// round-robin lands on. handled is false for ordinary SQL.
func (s *Server) admin(sql string) (cols []string, rows [][]sqlengine.Value, handled bool, err error) {
	fields := strings.Fields(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
	switch {
	case len(fields) == 2 && strings.EqualFold(fields[0], "SHOW") && strings.EqualFold(fields[1], "WORKERS"):
		// Worker health comes from whichever backend has the
		// availability subsystem wired; backends share one cluster, so
		// the first wired view is the view.
		st, ok := s.clusterStatus()
		if !ok {
			return nil, nil, true, fmt.Errorf("frontend: no availability subsystem is wired (SHOW WORKERS needs a czar with membership)")
		}
		cols = []string{"Worker", "State", "Chunks", "Misses", "LastSeen", "LastError"}
		for _, w := range st.Workers {
			lastSeen := "never"
			if !w.LastSeen.IsZero() {
				lastSeen = time.Since(w.LastSeen).Round(time.Millisecond).String() + " ago"
			}
			rows = append(rows, []sqlengine.Value{
				w.Name, w.State.String(), int64(w.Chunks), int64(w.Misses), lastSeen, w.LastErr,
			})
		}
		return cols, rows, true, nil
	case len(fields) == 2 && strings.EqualFold(fields[0], "SHOW") && strings.EqualFold(fields[1], "REPAIRS"):
		st, ok := s.clusterStatus()
		if !ok {
			return nil, nil, true, fmt.Errorf("frontend: no availability subsystem is wired (SHOW REPAIRS needs a czar with membership)")
		}
		cols = []string{"PlacementEpoch", "ChunksRepaired", "ChunksHealed", "ChunksPending", "TablesCopied", "BytesCopied", "LastError"}
		rows = append(rows, []sqlengine.Value{
			st.Epoch, int64(st.Repair.ChunksRepaired), int64(st.Repair.ChunksHealed), int64(st.Repair.ChunksPending),
			int64(st.Repair.TablesCopied), st.Repair.BytesCopied, st.Repair.LastError,
		})
		return cols, rows, true, nil
	case len(fields) == 2 && strings.EqualFold(fields[0], "SHOW") && strings.EqualFold(fields[1], "FRONTEND"):
		st := s.adm.stats()
		unlim := func(n int) sqlengine.Value {
			if n <= 0 {
				return "unlimited"
			}
			return int64(n)
		}
		cols = []string{"MaxSessions", "PerUserSessions", "SessionQueueDepth", "Active", "Queued", "Users", "Admitted", "EverQueued", "Shed"}
		rows = append(rows, []sqlengine.Value{
			unlim(st.MaxSessions), unlim(st.PerUser), int64(st.QueueDepth),
			int64(st.Active), int64(st.Queued), int64(st.Users),
			st.Admitted, st.EverQueued, st.Shed,
		})
		return cols, rows, true, nil
	case len(fields) == 2 && strings.EqualFold(fields[0], "SHOW") && strings.EqualFold(fields[1], "CACHE"):
		// One row per cache-enabled backend: each czar owns a private
		// result cache, so counters are per-czar, not cluster-global.
		cols = []string{"Czar", "Hits", "Misses", "HitRate", "Entries", "Bytes", "MaxBytes", "Evictions", "Invalidations", "Epoch"}
		for bi, b := range s.backends {
			cs, ok := b.CacheStats()
			if !ok {
				continue
			}
			rate := "0%"
			if lookups := cs.Hits + cs.Misses; lookups > 0 {
				rate = fmt.Sprintf("%.1f%%", 100*float64(cs.Hits)/float64(lookups))
			}
			rows = append(rows, []sqlengine.Value{
				int64(bi), cs.Hits, cs.Misses, rate, int64(cs.Entries),
				cs.Bytes, cs.MaxBytes, cs.Evictions, cs.Invalidations, cs.Epoch,
			})
		}
		if len(rows) == 0 {
			return nil, nil, true, fmt.Errorf("frontend: no result cache is enabled (SHOW CACHE needs a czar with ResultCacheBytes > 0)")
		}
		return cols, rows, true, nil
	case len(fields) == 2 && strings.EqualFold(fields[0], "SHOW") && strings.EqualFold(fields[1], "METRICS"):
		// One row per exposition line; backends typically share one
		// cluster-wide registry, so the first wired backend's view is
		// the view.
		for _, b := range s.backends {
			text, ok := b.MetricsText()
			if !ok {
				continue
			}
			cols = []string{"Metric"}
			for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
				rows = append(rows, []sqlengine.Value{line})
			}
			return cols, rows, true, nil
		}
		return nil, nil, true, fmt.Errorf("frontend: telemetry is disabled (SHOW METRICS needs a czar with a metrics registry)")
	case (len(fields) == 2 || len(fields) == 3) && strings.EqualFold(fields[0], "SHOW") && strings.EqualFold(fields[1], "PROFILE"):
		if len(fields) == 2 {
			// Without an id: list the retained traces, newest first.
			cols = []string{"RecentQueries"}
			for _, b := range s.backends {
				for _, line := range b.Profiles(32) {
					rows = append(rows, []sqlengine.Value{line})
				}
			}
			if len(rows) == 0 {
				return nil, nil, true, fmt.Errorf("frontend: no retained traces (SHOW PROFILE needs tracing enabled and at least one finished query)")
			}
			return cols, rows, true, nil
		}
		id, perr := strconv.ParseInt(fields[2], 10, 64)
		if perr != nil {
			return nil, nil, true, fmt.Errorf("frontend: bad SHOW PROFILE id %q", fields[2])
		}
		for _, b := range s.backends {
			text, ok := b.Profile(id)
			if !ok {
				continue
			}
			cols = []string{"Profile"}
			for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
				rows = append(rows, []sqlengine.Value{line})
			}
			return cols, rows, true, nil
		}
		return nil, nil, true, fmt.Errorf("frontend: no retained trace for query %d (evicted, never traced, or telemetry disabled)", id)
	case len(fields) == 2 && strings.EqualFold(fields[0], "SHOW") && strings.EqualFold(fields[1], "PROCESSLIST"):
		cols = []string{"Id", "Czar", "Class", "Time", "Chunks", "Rows", "Info"}
		for bi, b := range s.backends {
			for _, qi := range b.Running() {
				rows = append(rows, []sqlengine.Value{
					qi.ID,
					int64(bi),
					qi.Class.String(),
					time.Since(qi.Started).Round(time.Millisecond).String(),
					fmt.Sprintf("%d/%d", qi.ChunksCompleted, qi.ChunksTotal),
					qi.RowsMerged,
					qi.SQL,
				})
			}
		}
		return cols, rows, true, nil
	case len(fields) == 2 && strings.EqualFold(fields[0], "KILL"):
		// Czar-local query ids can collide across backends; an
		// explicit `KILL <czar>:<id>` targets one backend, and a bare
		// id is honored only when exactly one backend runs it.
		if czarStr, idStr, qualified := strings.Cut(fields[1], ":"); qualified {
			bi, berr := strconv.Atoi(czarStr)
			id, perr := strconv.ParseInt(idStr, 10, 64)
			if berr != nil || perr != nil || bi < 0 || bi >= len(s.backends) {
				return nil, nil, true, fmt.Errorf("frontend: bad KILL target %q", fields[1])
			}
			if !s.backends[bi].Kill(id) {
				return nil, nil, true, fmt.Errorf("frontend: no query %d on czar %d", id, bi)
			}
			return []string{"killed"}, [][]sqlengine.Value{{id}}, true, nil
		}
		id, perr := strconv.ParseInt(fields[1], 10, 64)
		if perr != nil {
			return nil, nil, true, fmt.Errorf("frontend: bad KILL id %q", fields[1])
		}
		var owners []int
		for bi, b := range s.backends {
			for _, qi := range b.Running() {
				if qi.ID == id {
					owners = append(owners, bi)
					break
				}
			}
		}
		switch len(owners) {
		case 0:
			return nil, nil, true, fmt.Errorf("frontend: no such query %d", id)
		case 1:
			if !s.backends[owners[0]].Kill(id) {
				return nil, nil, true, fmt.Errorf("frontend: no such query %d", id)
			}
			return []string{"killed"}, [][]sqlengine.Value{{id}}, true, nil
		default:
			return nil, nil, true, fmt.Errorf(
				"frontend: query id %d is running on %d czars; use KILL <czar>:%d (czar column of SHOW PROCESSLIST)",
				id, len(owners), id)
		}
	}
	return nil, nil, false, nil
}

// clusterStatus returns the first backend's availability view.
func (s *Server) clusterStatus() (member.Status, bool) {
	for _, b := range s.backends {
		if st, ok := b.ClusterStatus(); ok {
			return st, true
		}
	}
	return member.Status{}, false
}
