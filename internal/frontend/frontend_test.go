package frontend

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/czar"
	"repro/internal/member"
	"repro/internal/qcache"
	"repro/internal/sqlengine"
)

// fakeBackend is a Backend whose query sessions are driven by a
// per-query handler through czar.QueryFeed — the seam that lets these
// tests control exactly when columns appear, rows stream, and errors
// strike, without a cluster underneath.
type fakeBackend struct {
	handler func(sql string, feed *czar.QueryFeed)

	mu      sync.Mutex
	nextID  int64
	running map[int64]*czar.Query
}

func newFakeBackend(handler func(sql string, feed *czar.QueryFeed)) *fakeBackend {
	return &fakeBackend{handler: handler, running: map[int64]*czar.Query{}}
}

func (f *fakeBackend) Submit(ctx context.Context, sql string, opts czar.Options) (*czar.Query, error) {
	f.mu.Lock()
	f.nextID++
	id := f.nextID
	f.mu.Unlock()
	q, feed := czar.NewQueryHandle(id, sql, core.Interactive)
	f.mu.Lock()
	f.running[id] = q
	f.mu.Unlock()
	// Bridge the submission context into the handle, as a real czar's
	// Submit does: canceling ctx kills the session.
	go func() {
		select {
		case <-ctx.Done():
			q.Cancel()
		case <-feed.Context().Done():
		}
	}()
	go func() {
		defer func() {
			f.mu.Lock()
			delete(f.running, id)
			f.mu.Unlock()
		}()
		f.handler(sql, feed)
	}()
	return q, nil
}

func (f *fakeBackend) Running() []czar.QueryInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]czar.QueryInfo, 0, len(f.running))
	for _, q := range f.running {
		out = append(out, czar.QueryInfo{ID: q.ID(), SQL: q.SQL(), Class: q.Class(), Started: q.Started()})
	}
	return out
}

func (f *fakeBackend) Kill(id int64) bool {
	f.mu.Lock()
	q := f.running[id]
	f.mu.Unlock()
	if q == nil {
		return false
	}
	q.Cancel()
	return true
}

func (f *fakeBackend) ClusterStatus() (member.Status, bool) { return member.Status{}, false }

func (f *fakeBackend) CacheStats() (qcache.Stats, bool) { return qcache.Stats{}, false }

func (f *fakeBackend) MetricsText() (string, bool) { return "", false }

func (f *fakeBackend) Profile(id int64) (string, bool) { return "", false }

func (f *fakeBackend) Profiles(n int) []string { return nil }

// echoHandler answers every query with a fixed two-column result.
func echoHandler(sql string, feed *czar.QueryFeed) {
	feed.SetColumns("id", "name")
	feed.Push(sqlengine.Row{int64(1), "a"}, sqlengine.Row{int64(2), "b"})
	feed.Finish(&sqlengine.Result{Cols: []string{"id", "name"}}, nil)
}

func serve(t *testing.T, cfg Config, b Backend) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", cfg, b)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dial(t *testing.T, s *Server, user string) *Client {
	t.Helper()
	c, err := Dial(s.Addr(), user, "lsst")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestV2RoundTrip(t *testing.T) {
	s := serve(t, Config{}, newFakeBackend(echoHandler))
	c := dial(t, s, "alice")
	for i := 0; i < 3; i++ { // connection is reusable across queries
		st, err := c.Query(context.Background(), "SELECT * FROM Object")
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if got := strings.Join(st.Cols(), ","); got != "id,name" {
			t.Fatalf("cols = %q", got)
		}
		var rows [][]sqlengine.Value
		for {
			row, ok := st.Next()
			if !ok {
				break
			}
			rows = append(rows, row)
		}
		if st.Err() != nil {
			t.Fatalf("stream error: %v", st.Err())
		}
		if len(rows) != 2 || st.RowCount() != 2 {
			t.Fatalf("rows = %v (count %d)", rows, st.RowCount())
		}
		if rows[0][0] != int64(1) || rows[1][1] != "b" {
			t.Fatalf("row values = %v", rows)
		}
	}
}

// TestV2StreamsBeforeCompletion is the protocol's reason to exist: the
// client must see the column header and the first row while the server
// side query is still running.
func TestV2StreamsBeforeCompletion(t *testing.T) {
	release := make(chan struct{})
	b := newFakeBackend(func(sql string, feed *czar.QueryFeed) {
		feed.SetColumns("x")
		feed.Push(sqlengine.Row{int64(42)})
		<-release // query is "still running" until the test releases it
		feed.Push(sqlengine.Row{int64(43)})
		feed.Finish(&sqlengine.Result{Cols: []string{"x"}}, nil)
	})
	s := serve(t, Config{}, b)
	c := dial(t, s, "alice")

	st, err := c.Query(context.Background(), "SELECT x FROM Object")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	row, ok := st.Next()
	if !ok || row[0] != int64(42) {
		t.Fatalf("first row = %v, %v", row, ok)
	}
	// First row observed while the producer is parked: streaming, not
	// buffering.
	close(release)
	if row, ok = st.Next(); !ok || row[0] != int64(43) {
		t.Fatalf("second row = %v, %v", row, ok)
	}
	if _, ok = st.Next(); ok || st.Err() != nil {
		t.Fatalf("expected clean end of stream, err=%v", st.Err())
	}
}

// TestV2MidStreamError pins the defining fix over v1: a failure after
// rows have already been streamed arrives as an in-band error frame,
// not a silent truncation.
func TestV2MidStreamError(t *testing.T) {
	b := newFakeBackend(func(sql string, feed *czar.QueryFeed) {
		feed.SetColumns("x")
		feed.Push(sqlengine.Row{int64(1)}, sqlengine.Row{int64(2)})
		feed.Finish(nil, fmt.Errorf("worker w3 died mid-scan"))
	})
	s := serve(t, Config{}, b)
	c := dial(t, s, "alice")

	st, err := c.Query(context.Background(), "SELECT x FROM Object")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var n int
	for {
		if _, ok := st.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("rows before error = %d, want 2", n)
	}
	if st.Err() == nil || !strings.Contains(st.Err().Error(), "worker w3 died mid-scan") {
		t.Fatalf("stream error = %v, want the mid-scan failure", st.Err())
	}
	// The connection survives an in-band error.
	st2, err := c.Query(context.Background(), "SELECT x FROM Object")
	if err != nil {
		t.Fatalf("second query: %v", err)
	}
	for {
		if _, ok := st2.Next(); !ok {
			break
		}
	}
	if st2.Err() == nil || !strings.Contains(st2.Err().Error(), "worker w3 died mid-scan") {
		t.Fatalf("second stream error = %v", st2.Err())
	}
}

// TestV2ImmediateError covers a failure before any column is known
// (plan error, admission): the header slot carries the error frame.
func TestV2ImmediateError(t *testing.T) {
	b := newFakeBackend(func(sql string, feed *czar.QueryFeed) {
		feed.Finish(nil, fmt.Errorf("parse error near FROM"))
	})
	s := serve(t, Config{}, b)
	c := dial(t, s, "alice")
	if _, err := c.Query(context.Background(), "SELEC"); err == nil || !strings.Contains(err.Error(), "parse error") {
		t.Fatalf("err = %v, want parse error", err)
	}
	if err := c.Ping(); err != nil { // connection still healthy
		t.Fatalf("Ping after error: %v", err)
	}
}

func TestV2KillFrame(t *testing.T) {
	started := make(chan struct{})
	b := newFakeBackend(func(sql string, feed *czar.QueryFeed) {
		feed.SetColumns("x")
		close(started)
		<-feed.Context().Done() // run until killed
		feed.Finish(nil, nil)   // cancellation cause wins in Finish
	})
	s := serve(t, Config{}, b)
	c := dial(t, s, "alice")

	st, err := c.Query(context.Background(), "SELECT x FROM Object")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	<-started
	if err := c.Kill(); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	if _, ok := st.Next(); ok {
		t.Fatalf("expected killed stream to end")
	}
	if st.Err() == nil || !strings.Contains(st.Err().Error(), "context canceled") {
		t.Fatalf("stream error = %v, want context canceled", st.Err())
	}
}

// TestV2ContextCancel proves the client-side ctx watcher kills the
// in-flight query server-side.
func TestV2ContextCancel(t *testing.T) {
	started := make(chan struct{})
	killed := make(chan struct{})
	b := newFakeBackend(func(sql string, feed *czar.QueryFeed) {
		feed.SetColumns("x")
		close(started)
		<-feed.Context().Done()
		close(killed)
		feed.Finish(nil, nil)
	})
	s := serve(t, Config{}, b)
	c := dial(t, s, "alice")

	ctx, cancel := context.WithCancel(context.Background())
	st, err := c.Query(ctx, "SELECT x FROM Object")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	<-started
	cancel()
	select {
	case <-killed:
	case <-time.After(5 * time.Second):
		t.Fatalf("backend query not killed after ctx cancel")
	}
	if _, ok := st.Next(); ok || st.Err() == nil {
		t.Fatalf("expected canceled stream to fail, err=%v", st.Err())
	}
}

// TestV2DisconnectKillsQuery: dropping the socket mid-query cancels the
// backend session through the per-connection context.
func TestV2DisconnectKillsQuery(t *testing.T) {
	started := make(chan struct{})
	killed := make(chan struct{})
	b := newFakeBackend(func(sql string, feed *czar.QueryFeed) {
		feed.SetColumns("x")
		close(started)
		<-feed.Context().Done()
		close(killed)
		feed.Finish(nil, nil)
	})
	s := serve(t, Config{}, b)
	c := dial(t, s, "alice")

	if _, err := c.Query(context.Background(), "SELECT x FROM Object"); err != nil {
		t.Fatalf("Query: %v", err)
	}
	<-started
	c.Close() // client vanishes mid-stream
	select {
	case <-killed:
	case <-time.After(5 * time.Second):
		t.Fatalf("backend query not killed after client disconnect")
	}
}

func TestAdmissionPerUserQuota(t *testing.T) {
	block := make(chan struct{})
	b := newFakeBackend(func(sql string, feed *czar.QueryFeed) {
		feed.SetColumns("x")
		<-block
		feed.Finish(&sqlengine.Result{Cols: []string{"x"}}, nil)
	})
	defer close(block)
	s := serve(t, Config{MaxSessions: 10, PerUserSessions: 2, SessionQueueDepth: 10}, b)

	// Two sessions for alice occupy her quota.
	for i := 0; i < 2; i++ {
		c := dial(t, s, "alice")
		if _, err := c.Query(context.Background(), "SELECT x FROM Object"); err != nil {
			t.Fatalf("Query %d: %v", i, err)
		}
	}
	// Her third sheds fast, even though global capacity remains.
	c3 := dial(t, s, "alice")
	start := time.Now()
	_, err := c3.Query(context.Background(), "SELECT x FROM Object")
	if !IsBusy(err) {
		t.Fatalf("third alice query: err = %v, want busy", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shed took %v, want fast rejection", d)
	}
	// Another user is unaffected.
	cb := dial(t, s, "bob")
	if _, err := cb.Query(context.Background(), "SELECT x FROM Object"); err != nil {
		t.Fatalf("bob query: %v", err)
	}
	st := s.Stats()
	if st.Shed != 1 || st.Active != 3 {
		t.Fatalf("stats = %+v, want 1 shed / 3 active", st)
	}
}

func TestAdmissionGlobalQuotaQueuesThenSheds(t *testing.T) {
	block := make(chan struct{})
	var startedN atomic.Int64
	b := newFakeBackend(func(sql string, feed *czar.QueryFeed) {
		startedN.Add(1)
		feed.SetColumns("x")
		<-block
		feed.Finish(&sqlengine.Result{Cols: []string{"x"}}, nil)
	})
	s := serve(t, Config{MaxSessions: 1, SessionQueueDepth: 1}, b)

	// First session holds the only slot.
	c1 := dial(t, s, "u1")
	if _, err := c1.Query(context.Background(), "SELECT x FROM Object"); err != nil {
		t.Fatalf("first query: %v", err)
	}

	// Second queues (no header until the slot frees).
	c2 := dial(t, s, "u2")
	type qres struct {
		st  *Stream
		err error
	}
	res2 := make(chan qres, 1)
	go func() {
		st, err := c2.Query(context.Background(), "SELECT x FROM Object")
		res2 <- qres{st, err}
	}()

	// Wait until the waiter is actually enqueued, then overflow the
	// queue: the third session sheds immediately.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("second session never queued: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	c3 := dial(t, s, "u3")
	start := time.Now()
	_, err := c3.Query(context.Background(), "SELECT x FROM Object")
	if !IsBusy(err) {
		t.Fatalf("third query: err = %v, want busy", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shed took %v, want fast rejection", d)
	}

	// Releasing the first session promotes the queued one.
	close(block)
	r2 := <-res2
	if r2.err != nil {
		t.Fatalf("queued query: %v", r2.err)
	}
	for {
		if _, ok := r2.st.Next(); !ok {
			break
		}
	}
	if r2.st.Err() != nil {
		t.Fatalf("queued query stream: %v", r2.st.Err())
	}
	if n := startedN.Load(); n != 2 {
		t.Fatalf("backend saw %d sessions, want 2 (third was shed)", n)
	}
	st := s.Stats()
	if st.Shed != 1 || st.EverQueued != 1 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAdmissionQueuedWaiterAbandoned: a client that disconnects while
// queued must not hold its queue slot or user reservation.
func TestAdmissionQueuedWaiterAbandoned(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	b := newFakeBackend(func(sql string, feed *czar.QueryFeed) {
		feed.SetColumns("x")
		<-block
		feed.Finish(&sqlengine.Result{Cols: []string{"x"}}, nil)
	})
	s := serve(t, Config{MaxSessions: 1, PerUserSessions: 1, SessionQueueDepth: 4}, b)

	c1 := dial(t, s, "u1")
	if _, err := c1.Query(context.Background(), "SELECT x FROM Object"); err != nil {
		t.Fatalf("first query: %v", err)
	}
	c2 := dial(t, s, "u2")
	go c2.Query(context.Background(), "SELECT x FROM Object")
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("second session never queued: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	c2.Close()
	// u2's reservation drains, so a fresh u2 session can queue again.
	deadline = time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.Queued == 0 && st.Users == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned waiter still reserved: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestV2AdminCommands(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	b := newFakeBackend(func(sql string, feed *czar.QueryFeed) {
		feed.SetColumns("x")
		select {
		case <-block:
		case <-feed.Context().Done():
		}
		feed.Finish(&sqlengine.Result{Cols: []string{"x"}}, nil)
	})
	s := serve(t, Config{MaxSessions: 8}, b)
	c := dial(t, s, "alice")
	if _, err := c.Query(context.Background(), "SELECT x FROM Object"); err != nil {
		t.Fatalf("query: %v", err)
	}

	admin := dial(t, s, "op")
	st, err := admin.Query(context.Background(), "SHOW FRONTEND")
	if err != nil {
		t.Fatalf("SHOW FRONTEND: %v", err)
	}
	row, ok := st.Next()
	if !ok || len(row) != 9 {
		t.Fatalf("SHOW FRONTEND row = %v", row)
	}
	if row[0] != int64(8) || row[3] != int64(1) { // MaxSessions, Active
		t.Fatalf("SHOW FRONTEND row = %v, want MaxSessions=8 Active=1", row)
	}
	st.Close()

	st, err = admin.Query(context.Background(), "SHOW PROCESSLIST")
	if err != nil {
		t.Fatalf("SHOW PROCESSLIST: %v", err)
	}
	var n int
	var id int64
	for {
		row, ok := st.Next()
		if !ok {
			break
		}
		id = row[0].(int64)
		n++
	}
	if n != 1 {
		t.Fatalf("PROCESSLIST rows = %d, want 1", n)
	}

	st, err = admin.Query(context.Background(), fmt.Sprintf("KILL %d", id))
	if err != nil {
		t.Fatalf("KILL: %v", err)
	}
	st.Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(b.Running()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("killed query still running")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestV2BadHandshake(t *testing.T) {
	s := serve(t, Config{}, newFakeBackend(echoHandler))
	if _, err := Dial(s.Addr(), "alice\x00evil", "db"); err == nil {
		t.Fatalf("expected handshake with embedded NUL in db to fail")
	}
}

func TestStreamCloseMidFlight(t *testing.T) {
	b := newFakeBackend(func(sql string, feed *czar.QueryFeed) {
		feed.SetColumns("x")
		for i := 0; ; i++ {
			select {
			case <-feed.Context().Done():
				feed.Finish(nil, nil)
				return
			default:
			}
			feed.Push(sqlengine.Row{int64(i)})
			time.Sleep(time.Millisecond)
		}
	})
	s := serve(t, Config{}, b)
	c := dial(t, s, "alice")

	st, err := c.Query(context.Background(), "SELECT x FROM Object")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatalf("expected at least one row")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The connection is reusable after an abandoned stream.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after Close: %v", err)
	}
}

// TestDoneFrameStatsRoundTrip pins the Done trailer's wire contract:
// the appended stats uvarints survive a round trip, a stats-free
// trailer from an old server decodes to zero stats, extra whole
// uvarints from a future server are skipped, and a truncated uvarint
// is rejected as hostile rather than read as a short value.
func TestDoneFrameStatsRoundTrip(t *testing.T) {
	want := DoneStats{ElapsedNS: 123456789, Chunks: 7, BytesMerged: 1 << 20}
	body := encodeDone(42, want)
	if body[0] != tagDone {
		t.Fatalf("tag = %#x", body[0])
	}
	rows, st, err := decodeDone(body[1:])
	if err != nil || rows != 42 || st != want {
		t.Fatalf("decodeDone = (%d, %+v, %v), want (42, %+v, nil)", rows, st, err, want)
	}

	// Old server: row count only.
	rows, st, err = decodeDone([]byte{42})
	if err != nil || rows != 42 || st != (DoneStats{}) {
		t.Fatalf("legacy decodeDone = (%d, %+v, %v)", rows, st, err)
	}

	// Future server: one extra whole uvarint after the known stats.
	future := append(append([]byte{}, body[1:]...), 0x05)
	rows, st, err = decodeDone(future)
	if err != nil || rows != 42 || st != want {
		t.Fatalf("forward-compat decodeDone = (%d, %+v, %v)", rows, st, err)
	}

	// Hostile: a truncated multi-byte uvarint must error, not silently
	// under-read.
	if _, _, err := decodeDone([]byte{42, 0x80}); err == nil {
		t.Fatalf("truncated trailer decoded without error")
	}
	if _, _, err := decodeDone(nil); err == nil {
		t.Fatalf("empty trailer decoded without error")
	}
}

// TestV2DoneStatsOnStream checks the stats ride the wire end to end:
// a finished query's Stream.Stats reports the czar-side elapsed time,
// and an admin command (which never touches a worker) reports zeros.
func TestV2DoneStatsOnStream(t *testing.T) {
	s := serve(t, Config{MaxSessions: 4}, newFakeBackend(echoHandler))
	c := dial(t, s, "alice")

	st, err := c.Query(context.Background(), "SELECT * FROM Object")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for {
		if _, ok := st.Next(); !ok {
			break
		}
	}
	if st.Err() != nil {
		t.Fatalf("stream error: %v", st.Err())
	}
	if got := st.Stats(); got.ElapsedNS <= 0 {
		t.Fatalf("Stats().ElapsedNS = %d, want > 0", got.ElapsedNS)
	}

	st, err = c.Query(context.Background(), "SHOW FRONTEND")
	if err != nil {
		t.Fatalf("SHOW FRONTEND: %v", err)
	}
	for {
		if _, ok := st.Next(); !ok {
			break
		}
	}
	if got := st.Stats(); got != (DoneStats{}) {
		t.Fatalf("admin Stats() = %+v, want zeros", got)
	}
}

// telemetryBackend is a fakeBackend with a metrics registry and
// retained traces wired, for the SHOW METRICS / SHOW PROFILE paths.
type telemetryBackend struct {
	*fakeBackend
	metrics  string
	profiles map[int64]string
}

func (b *telemetryBackend) MetricsText() (string, bool) { return b.metrics, b.metrics != "" }

func (b *telemetryBackend) Profile(id int64) (string, bool) {
	text, ok := b.profiles[id]
	return text, ok
}

func (b *telemetryBackend) Profiles(n int) []string {
	var out []string
	for id := range b.profiles {
		out = append(out, fmt.Sprintf("#%d trace", id))
		if len(out) == n {
			break
		}
	}
	return out
}

func TestShowMetricsAndProfile(t *testing.T) {
	b := &telemetryBackend{
		fakeBackend: newFakeBackend(echoHandler),
		metrics:     "# TYPE qserv_czar_queries_total counter\nqserv_czar_queries_total 5\n",
		profiles:    map[int64]string{7: "q7 SELECT ...\n  czar merge  1ms"},
	}
	s := serve(t, Config{}, b)
	c := dial(t, s, "op")

	collect := func(sql string) ([]string, error) {
		st, err := c.Query(context.Background(), sql)
		if err != nil {
			return nil, err
		}
		var lines []string
		for {
			row, ok := st.Next()
			if !ok {
				break
			}
			lines = append(lines, row[0].(string))
		}
		return lines, st.Err()
	}

	lines, err := collect("SHOW METRICS")
	if err != nil {
		t.Fatalf("SHOW METRICS: %v", err)
	}
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "# TYPE qserv_czar_queries_total") {
		t.Fatalf("SHOW METRICS rows = %q", lines)
	}

	lines, err = collect("SHOW PROFILE")
	if err != nil {
		t.Fatalf("SHOW PROFILE: %v", err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "#7") {
		t.Fatalf("SHOW PROFILE rows = %q", lines)
	}

	lines, err = collect("SHOW PROFILE 7")
	if err != nil {
		t.Fatalf("SHOW PROFILE 7: %v", err)
	}
	if len(lines) != 2 || !strings.Contains(lines[1], "czar merge") {
		t.Fatalf("SHOW PROFILE 7 rows = %q", lines)
	}

	if _, err := collect("SHOW PROFILE 99"); err == nil {
		t.Fatalf("SHOW PROFILE 99: expected no-retained-trace error")
	}
	if _, err := collect("SHOW PROFILE abc"); err == nil {
		t.Fatalf("SHOW PROFILE abc: expected bad-id error")
	}

	// A backend without telemetry wired refuses with a pointed error.
	s2 := serve(t, Config{}, newFakeBackend(echoHandler))
	c2 := dial(t, s2, "op")
	st, err := c2.Query(context.Background(), "SHOW METRICS")
	if err == nil {
		st.Close()
		t.Fatalf("SHOW METRICS without telemetry: expected error")
	}
}
