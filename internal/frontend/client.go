package frontend

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/sqlengine"
)

// Client speaks protocol v2: one connection, one query session at a
// time, rows decoded as the server streams them.
type Client struct {
	conn net.Conn
	r    *bufio.Reader

	// wmu guards the write side only: a kill frame (from a context
	// watcher) may race the session loop's query/ping frames.
	wmu sync.Mutex
	w   *bufio.Writer

	// mu serializes sessions: Query holds the connection until its
	// Stream is drained or closed.
	mu sync.Mutex
}

// Dial connects and performs the v2 handshake as user against db.
func Dial(addr, user, db string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if err := c.send(encodeHandshake(user, db)); err != nil {
		conn.Close()
		return nil, err
	}
	reply, err := readFrame(c.r)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("frontend: handshake: %w", err)
	}
	if h := string(reply); h != "OK2" {
		conn.Close()
		return nil, fmt.Errorf("frontend: handshake rejected: %s", strings.TrimPrefix(h, "ERR "))
	}
	return c, nil
}

// Close drops the connection; the server kills any in-flight query.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(frame []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := writeFrame(c.w, frame); err != nil {
		return err
	}
	return c.w.Flush()
}

// Kill asks the server to cancel the connection's in-flight query; the
// killed query's Stream ends with an error.
func (c *Client) Kill() error { return c.send([]byte{tagKill}) }

// Ping round-trips a ping frame. Only legal between queries.
func (c *Client) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.send([]byte{tagPing}); err != nil {
		return err
	}
	f, err := readFrame(c.r)
	if err != nil {
		return err
	}
	if len(f) != 1 || f[0] != tagPing {
		return fmt.Errorf("frontend: bad ping reply")
	}
	return nil
}

// Query starts one query session. It returns as soon as the column
// header (or an immediate error) arrives — before any row exists — and
// the Stream yields rows as the server merges them. Canceling ctx
// sends a kill frame, failing the stream promptly. The connection is
// held until the Stream is drained or closed.
func (c *Client) Query(ctx context.Context, sql string) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if err := c.send(append([]byte{tagQuery}, sql...)); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	st := &Stream{c: c, ctx: ctx}
	if ctx.Done() != nil {
		watchDone := make(chan struct{})
		st.stopWatch = func() { close(watchDone) }
		go func() {
			select {
			case <-ctx.Done():
				c.Kill()
			case <-watchDone:
			}
		}()
	}
	f, err := st.read()
	if err != nil {
		st.finish(err)
		return nil, err
	}
	switch f[0] {
	case tagCols:
		cols, err := decodeCols(f[1:])
		if err != nil {
			st.finish(err)
			return nil, err
		}
		st.cols = cols
		return st, nil
	case tagErr:
		err := serverError(f[1:])
		st.finish(nil)
		return nil, err
	default:
		err := fmt.Errorf("frontend: unexpected frame tag %q for header", f[0])
		st.finish(err)
		return nil, err
	}
}

// serverError wraps an E-frame message, preserving the busy prefix so
// callers can distinguish admission shedding from query failure.
func serverError(msg []byte) error {
	return fmt.Errorf("frontend: server error: %s", msg)
}

// IsBusy reports whether err is an admission-control rejection (the
// frontend shed the query instead of running it).
func IsBusy(err error) bool {
	return err != nil && strings.Contains(err.Error(), "busy: ")
}

// Stream is one in-flight query's result: columns known up front, rows
// arriving as the server streams them.
type Stream struct {
	c         *Client
	ctx       context.Context
	cols      []string
	stopWatch func()

	done  bool
	nrows int64
	stats DoneStats
	err   error
}

// Cols returns the result column names (available before any row).
func (s *Stream) Cols() []string { return s.cols }

func (s *Stream) read() ([]byte, error) {
	f, err := readFrame(s.c.r)
	if err != nil {
		return nil, err
	}
	if len(f) == 0 {
		return nil, fmt.Errorf("frontend: empty frame")
	}
	return f, nil
}

// finish releases the connection for the next query; with a non-nil
// err the connection is poisoned mid-stream and closed instead.
func (s *Stream) finish(err error) {
	if s.done {
		return
	}
	s.done = true
	if s.stopWatch != nil {
		s.stopWatch()
	}
	if err != nil {
		s.err = err
		s.c.conn.Close()
	}
	s.c.mu.Unlock()
}

// Next returns the next row, blocking until the server streams one; ok
// is false at end of stream — then Err distinguishes success from
// failure (a v2 error frame is legal mid-stream, after any number of
// rows).
func (s *Stream) Next() (row []sqlengine.Value, ok bool) {
	if s.done {
		return nil, false
	}
	f, err := s.read()
	if err != nil {
		s.finish(err)
		return nil, false
	}
	switch f[0] {
	case tagRow:
		r, err := decodeRow(f[1:], len(s.cols))
		if err != nil {
			s.finish(err)
			return nil, false
		}
		return r, true
	case tagDone:
		n, st, err := decodeDone(f[1:])
		if err != nil {
			s.finish(err)
			return nil, false
		}
		s.nrows = n
		s.stats = st
		s.finish(nil)
		return nil, false
	case tagErr:
		serr := serverError(f[1:])
		// A server-reported error ends the session cleanly: the
		// connection stays usable for the next query.
		s.err = serr
		s.finish(nil)
		return nil, false
	default:
		s.finish(fmt.Errorf("frontend: unexpected frame tag %q in stream", f[0]))
		return nil, false
	}
}

// Err returns the stream's terminal error, if any, once Next returned
// false.
func (s *Stream) Err() error { return s.err }

// RowCount returns the server-reported row count after a clean end of
// stream.
func (s *Stream) RowCount() int64 { return s.nrows }

// Stats returns the server-reported per-query accounting after a clean
// end of stream; zero against servers that predate the trailer stats.
func (s *Stream) Stats() DoneStats { return s.stats }

// Close abandons the stream: if rows are still in flight it kills the
// query and drains the remaining frames so the connection is reusable.
func (s *Stream) Close() error {
	if s.done {
		return nil
	}
	s.c.Kill()
	for {
		f, err := s.read()
		if err != nil {
			s.finish(err)
			return nil
		}
		switch f[0] {
		case tagDone, tagErr:
			s.finish(nil)
			return nil
		}
	}
}
