package frontend

import (
	"fmt"
	"sync"

	"repro/internal/telemetry"
)

// logger emits the frontend's structured events (admission shed).
var logger = telemetry.NewLogger("frontend")

// admission is the controller that keeps a connection storm from
// becoming a czar OOM. Each query session must acquire a slot before
// it reaches Submit:
//
//   - Per-user quota (PerUserSessions) is checked first and sheds
//     immediately — a user over quota gets "busy: ..." without ever
//     occupying queue space, so one greedy user cannot starve others.
//   - The global quota (MaxSessions) admits up to that many concurrent
//     sessions; beyond it, sessions wait in a FIFO queue bounded by
//     SessionQueueDepth. A full queue sheds immediately.
//
// Shedding is an ordinary protocol error frame ("busy:" prefix), so a
// rejected query costs one round trip and the connection survives.
type admission struct {
	maxSessions int
	perUser     int
	queueDepth  int

	mu      sync.Mutex
	active  int
	byUser  map[string]int
	waiters []*waiter

	// lifetime counters for SHOW FRONTEND
	admitted int64
	queued   int64
	shed     int64
}

type waiter struct {
	user  string
	ready chan struct{} // closed when a slot is granted
	gone  bool          // abandoned (client disconnected while queued)
}

func newAdmission(maxSessions, perUser, queueDepth int) *admission {
	return &admission{
		maxSessions: maxSessions,
		perUser:     perUser,
		queueDepth:  queueDepth,
		byUser:      make(map[string]int),
	}
}

// errBusy marks shed errors; clients detect shedding by the prefix.
func errBusy(format string, args ...any) error {
	return fmt.Errorf("busy: "+format, args...)
}

// acquire reserves a session slot for user, blocking in the bounded
// FIFO queue if the global quota is saturated. done aborts the wait
// (client disconnected or query context canceled). On success the
// caller must release().
func (a *admission) acquire(user string, done <-chan struct{}) error {
	a.mu.Lock()
	if a.perUser > 0 && a.byUser[user] >= a.perUser {
		a.shed++
		a.mu.Unlock()
		logger.Warn("admission.shed", "user", user, "reason", "user_quota", "per_user", a.perUser)
		return errBusy("user %q at session quota (%d)", user, a.perUser)
	}
	if a.maxSessions <= 0 || a.active < a.maxSessions {
		a.grantLocked(user)
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.queueDepth {
		a.shed++
		queued := len(a.waiters)
		a.mu.Unlock()
		logger.Warn("admission.shed", "user", user, "reason", "capacity",
			"max_sessions", a.maxSessions, "queued", queued)
		return errBusy("frontend at capacity (%d sessions, %d queued)", a.maxSessions, queued)
	}
	// The per-user reservation is taken at enqueue time, not at grant
	// time: a user over quota must shed fast even when the contention
	// is global, and the queue must not hold more of one user's
	// sessions than the user may ever run.
	w := &waiter{user: user, ready: make(chan struct{})}
	a.byUser[user]++
	a.waiters = append(a.waiters, w)
	a.queued++
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-done:
		a.mu.Lock()
		select {
		case <-w.ready:
			// Raced: the slot was granted as we gave up. Hand it on.
			a.releaseLocked(w.user)
			a.mu.Unlock()
			return errBusy("session abandoned while queued")
		default:
		}
		w.gone = true
		a.byUser[w.user]--
		if a.byUser[w.user] == 0 {
			delete(a.byUser, w.user)
		}
		a.mu.Unlock()
		return errBusy("session abandoned while queued")
	}
}

// grantLocked admits user to a slot. Caller holds a.mu.
func (a *admission) grantLocked(user string) {
	a.active++
	a.byUser[user]++
	a.admitted++
}

// release returns a slot and promotes the next live waiter, if any.
func (a *admission) release(user string) {
	a.mu.Lock()
	a.releaseLocked(user)
	a.mu.Unlock()
}

func (a *admission) releaseLocked(user string) {
	a.active--
	a.byUser[user]--
	if a.byUser[user] == 0 {
		delete(a.byUser, user)
	}
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		if w.gone {
			continue
		}
		// The waiter's per-user count was reserved at enqueue; only the
		// global slot transfers.
		a.active++
		a.admitted++
		close(w.ready)
		return
	}
}

// Stats is a point-in-time admission snapshot, served by SHOW FRONTEND.
type Stats struct {
	Active      int   // sessions currently admitted
	Queued      int   // sessions waiting for a slot
	Users       int   // distinct users with admitted or queued sessions
	MaxSessions int   // global quota (0 = unlimited)
	PerUser     int   // per-user quota (0 = unlimited)
	QueueDepth  int   // waiter queue bound
	Admitted    int64 // lifetime sessions admitted
	EverQueued  int64 // lifetime sessions that had to queue
	Shed        int64 // lifetime sessions rejected with busy
}

func (a *admission) stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	live := 0
	for _, w := range a.waiters {
		if !w.gone {
			live++
		}
	}
	return Stats{
		Active:      a.active,
		Queued:      live,
		Users:       len(a.byUser),
		MaxSessions: a.maxSessions,
		PerUser:     a.perUser,
		QueueDepth:  a.queueDepth,
		Admitted:    a.admitted,
		EverQueued:  a.queued,
		Shed:        a.shed,
	}
}
