package chunkstore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, rec
}

// TestAppendReopen: appended segments and the spec survive a clean
// close-and-reopen, in application order.
func TestAppendReopen(t *testing.T) {
	dir := t.TempDir()
	s, rec := mustOpen(t, dir)
	if len(rec.Units) != 0 || rec.WALReplayed != 0 {
		t.Fatalf("fresh store recovered %+v", rec)
	}
	obj := Unit{Table: "Object", Chunk: 5}
	flt := Unit{Table: "Filter", Shared: true}
	for _, p := range []string{"batch-1", "batch-2"} {
		if err := s.Append(obj, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(flt, []byte("filters")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec([]byte(`{"Database":"LSST"}`)); err != nil {
		t.Fatal(err)
	}
	if !s.Has(obj) || !s.Has(flt) || s.Has(Unit{Table: "Object", Chunk: 6}) {
		t.Fatal("Has disagrees with what was appended")
	}
	s.Close()

	s2, rec2 := mustOpen(t, dir)
	if rec2.WALReplayed != 0 || len(rec2.Quarantined) != 0 {
		t.Fatalf("clean reopen: %+v", rec2)
	}
	if len(rec2.Units) != 2 {
		t.Fatalf("recovered %d units, want 2", len(rec2.Units))
	}
	var got *RecoveredUnit
	for i := range rec2.Units {
		if rec2.Units[i].Unit == obj {
			got = &rec2.Units[i]
		}
	}
	if got == nil || len(got.Segments) != 2 ||
		string(got.Segments[0]) != "batch-1" || string(got.Segments[1]) != "batch-2" {
		t.Fatalf("Object@5 recovered %+v", got)
	}
	if spec, ok := s2.Spec(); !ok || !strings.Contains(string(spec), "LSST") {
		t.Fatalf("spec not recovered: %q %v", spec, ok)
	}
	// Appends continue the sequence after recovery.
	if err := s2.Append(obj, []byte("batch-3")); err != nil {
		t.Fatal(err)
	}
	segs, err := s2.Segments(obj)
	if err != nil || len(segs) != 3 || string(segs[2]) != "batch-3" {
		t.Fatalf("post-recovery append: %v %v", segs, err)
	}
}

// TestReplaceDropsOldSegments: Replace installs a new complete segment
// set and removes the unit's older segments, surviving reopen.
func TestReplaceDropsOldSegments(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	u := Unit{Table: "Object", Chunk: 9}
	for _, p := range []string{"old-1", "old-2"} {
		if err := s.Append(u, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Replace(u, [][]byte{[]byte("new-1"), []byte("new-2")}); err != nil {
		t.Fatal(err)
	}
	segs, err := s.Segments(u)
	if err != nil || len(segs) != 2 || string(segs[0]) != "new-1" {
		t.Fatalf("after replace: %v %v", segs, err)
	}
	s.Close()
	_, rec := mustOpen(t, dir)
	if len(rec.Units) != 1 || len(rec.Units[0].Segments) != 2 ||
		string(rec.Units[0].Segments[0]) != "new-1" || string(rec.Units[0].Segments[1]) != "new-2" {
		t.Fatalf("recovered %+v", rec.Units)
	}
}

// TestWALReplay: a record fsynced to the WAL whose segment application
// never happened (the crash window) is redone by Open.
func TestWALReplay(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, tablesDir), 0o755); err != nil {
		t.Fatal(err)
	}
	u := Unit{Table: "Object", Chunk: 3}
	rec := encodeWALRecord(walRecord{op: walAppend, unit: u, seq: 1, segs: [][]byte{[]byte("payload")}})
	if err := os.WriteFile(filepath.Join(dir, walFile), rec, 0o644); err != nil {
		t.Fatal(err)
	}
	s, r := mustOpen(t, dir)
	if r.WALReplayed != 1 {
		t.Fatalf("WALReplayed = %d, want 1", r.WALReplayed)
	}
	segs, err := s.Segments(u)
	if err != nil || len(segs) != 1 || string(segs[0]) != "payload" {
		t.Fatalf("replayed unit: %v %v", segs, err)
	}
	// The WAL is checkpointed after replay.
	if st, err := os.Stat(filepath.Join(dir, walFile)); err != nil || st.Size() != 0 {
		t.Fatalf("wal not truncated after replay: %v %v", st, err)
	}
}

// TestTornWALTail: a torn tail (the expected shape of a crash mid
// WAL append) silently ends replay — intact records before it apply,
// the unacknowledged tail does not.
func TestTornWALTail(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, tablesDir), 0o755); err != nil {
		t.Fatal(err)
	}
	good := encodeWALRecord(walRecord{op: walAppend, unit: Unit{Table: "Object", Chunk: 1}, seq: 1,
		segs: [][]byte{[]byte("good")}})
	torn := encodeWALRecord(walRecord{op: walAppend, unit: Unit{Table: "Object", Chunk: 2}, seq: 1,
		segs: [][]byte{[]byte("never-acked")}})
	torn = torn[:len(torn)-3] // crash mid-write: the record's CRC never landed
	if err := os.WriteFile(filepath.Join(dir, walFile), append(good, torn...), 0o644); err != nil {
		t.Fatal(err)
	}
	s, r := mustOpen(t, dir)
	if r.WALReplayed != 1 {
		t.Fatalf("WALReplayed = %d, want 1", r.WALReplayed)
	}
	if !s.Has(Unit{Table: "Object", Chunk: 1}) || s.Has(Unit{Table: "Object", Chunk: 2}) {
		t.Fatalf("units after torn-tail replay: %v", s.Units())
	}
}

// TestChecksumQuarantine: a unit whose segment bytes rotted is
// quarantined — renamed aside, excluded from the recovered inventory —
// while intact units keep serving; the unit can then be refilled.
func TestChecksumQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	bad := Unit{Table: "Object", Chunk: 4}
	ok := Unit{Table: "Object", Chunk: 8}
	if err := s.Append(bad, []byte("will-rot")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(ok, []byte("stays-good")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one payload byte under the checksum.
	segPath := filepath.Join(dir, tablesDir, bad.String(), segName(1))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, dir)
	if len(rec.Quarantined) != 1 || rec.Quarantined[0] != bad {
		t.Fatalf("Quarantined = %+v, want [%v]", rec.Quarantined, bad)
	}
	if len(rec.Units) != 1 || rec.Units[0].Unit != ok {
		t.Fatalf("Units = %+v, want just %v", rec.Units, ok)
	}
	if s2.Has(bad) || !s2.Has(ok) {
		t.Fatal("Has disagrees with quarantine")
	}
	// The bytes were set aside, not deleted.
	if _, err := os.Stat(filepath.Join(dir, tablesDir, bad.String()+quarantine)); err != nil {
		t.Fatalf("quarantined directory missing: %v", err)
	}
	// Repair re-ships the chunk: a fresh Replace rebuilds the unit.
	if err := s2.Replace(bad, [][]byte{[]byte("re-shipped")}); err != nil {
		t.Fatal(err)
	}
	segs, err := s2.Segments(bad)
	if err != nil || len(segs) != 1 || !bytes.Equal(segs[0], []byte("re-shipped")) {
		t.Fatalf("refilled unit: %v %v", segs, err)
	}
}

// TestTornSegmentTmpTolerated: a leftover .tmp file (crash between
// temp-write and rename) does not fail the unit.
func TestTornSegmentTmpTolerated(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	u := Unit{Table: "Object", Chunk: 2}
	if err := s.Append(u, []byte("whole")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	tmp := filepath.Join(dir, tablesDir, u.String(), segName(2)+".tmp")
	if err := os.WriteFile(tmp, []byte("half-writ"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir)
	if len(rec.Quarantined) != 0 || len(rec.Units) != 1 || len(rec.Units[0].Segments) != 1 {
		t.Fatalf("recovery with stray tmp: %+v", rec)
	}
}

// TestUnitValidation: names that cannot be directory names are refused.
func TestUnitValidation(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir())
	for _, u := range []Unit{
		{Table: "", Chunk: 1},
		{Table: "../evil", Chunk: 1},
		{Table: "a b", Chunk: 1},
		{Table: "Object", Chunk: -2},
	} {
		if err := s.Append(u, []byte("x")); err == nil {
			t.Errorf("Append(%+v) accepted an invalid unit", u)
		}
	}
}
