// Package chunkstore is a worker's durable chunk storage engine: the
// on-disk half of the paper's deployment, where chunk data lives in
// files that survive process death (section 5 runs workers over xrootd
// for exactly this reason). A Store keeps one directory per storage
// unit — a (table, chunk) pair or a replicated table — holding
// append-only segment files, where each segment is one encoded ingest
// batch protected by a CRC32 checksum.
//
// Mutations are made atomic by a small write-ahead log: a record
// carrying the full payload is appended and fsynced before the segment
// files change, and the WAL is truncated only after the segment write
// is durable. Recovery (Open) replays any WAL records whose segment
// application was torn — replay is idempotent, so a crash at any point
// converges — then verifies every segment file's checksum. A unit with
// a segment that fails verification is quarantined (set aside on disk,
// dropped from the recovered inventory) rather than served: the
// cluster's repair subsystem re-ships exactly the quarantined chunks
// from live replicas, which is the recovery-vs-repair split the
// availability design relies on.
//
// Layout under the store root:
//
//	spec.json                     catalog spec (atomic replace)
//	wal.log                       write-ahead log (usually empty)
//	tables/<unit>/seg-<seq>.qseg  segment files, applied in seq order
//
// where <unit> is "<table>@<chunk>" or "<table>@shared".
package chunkstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// logger emits the store's structured events (quarantines, replay);
// quiet by default, QSERV_LOG=info|debug raises verbosity.
var logger = telemetry.NewLogger("chunkstore")

// Unit identifies one storage unit: a partitioned table's chunk or a
// replicated table's full row set.
type Unit struct {
	Table  string
	Chunk  int
	Shared bool
}

// String renders the unit's directory name.
func (u Unit) String() string {
	if u.Shared {
		return u.Table + "@shared"
	}
	return u.Table + "@" + strconv.Itoa(u.Chunk)
}

// validUnit rejects table names that cannot be directory names.
func validUnit(u Unit) error {
	if u.Table == "" {
		return fmt.Errorf("chunkstore: empty table name")
	}
	for _, r := range u.Table {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
		default:
			return fmt.Errorf("chunkstore: table name %q has non-identifier character %q", u.Table, r)
		}
	}
	if !u.Shared && u.Chunk < 0 {
		return fmt.Errorf("chunkstore: negative chunk id %d", u.Chunk)
	}
	return nil
}

// parseUnit inverts Unit.String.
func parseUnit(name string) (Unit, error) {
	table, target, ok := strings.Cut(name, "@")
	if !ok || table == "" || target == "" {
		return Unit{}, fmt.Errorf("chunkstore: bad unit directory %q", name)
	}
	u := Unit{Table: table}
	if target == "shared" {
		u.Shared = true
	} else {
		chunk, err := strconv.Atoi(target)
		if err != nil || chunk < 0 {
			return Unit{}, fmt.Errorf("chunkstore: bad unit directory %q", name)
		}
		u.Chunk = chunk
	}
	if err := validUnit(u); err != nil {
		return Unit{}, err
	}
	return u, nil
}

// RecoveredUnit is one unit Open found intact: its segment payloads
// (encoded ingest batches) in application order.
type RecoveredUnit struct {
	Unit     Unit
	Segments [][]byte
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Units are the intact units, every segment checksum-verified.
	Units []RecoveredUnit
	// WALReplayed counts write-ahead-log records whose segment
	// application had to be redone (a crash between the WAL fsync and
	// the segment write).
	WALReplayed int
	// Quarantined lists units set aside for failing verification:
	// corrupt or torn segments, unparseable directories. Their data is
	// renamed out of the way, not deleted; the repair subsystem
	// re-ships these chunks from live replicas.
	Quarantined []Unit
}

// Store is one worker's durable chunk store. All methods are safe for
// concurrent use.
type Store struct {
	dir string

	mu     sync.Mutex
	wal    *os.File
	seq    map[string]uint64 // unit name -> highest segment seq on disk
	units  map[string]Unit   // units present
	closed bool

	counters Counters // commit-protocol accounting (atomic fields)
}

// Counters is a store's durability accounting: the telemetry layer
// exports these per worker, and operators watching fsync rates see
// exactly what the commit protocol is paying. Fields are read with
// atomic loads via (*Store).Counters; within Store they are updated
// under the atomic package directly so the WAL hot path stays
// lock-free beyond s.mu it already holds.
type Counters struct {
	WALAppends  int64 // records appended to the write-ahead log
	WALFsyncs   int64 // fsyncs issued by the commit protocol
	SegWrites   int64 // segment files written (appends + replaces)
	Quarantines int64 // units renamed aside for failing verification
}

// Counters snapshots the store's durability counters.
func (s *Store) Counters() Counters {
	return Counters{
		WALAppends:  atomic.LoadInt64(&s.counters.WALAppends),
		WALFsyncs:   atomic.LoadInt64(&s.counters.WALFsyncs),
		SegWrites:   atomic.LoadInt64(&s.counters.SegWrites),
		Quarantines: atomic.LoadInt64(&s.counters.Quarantines),
	}
}

const (
	specFile   = "spec.json"
	walFile    = "wal.log"
	tablesDir  = "tables"
	segPrefix  = "seg-"
	segSuffix  = ".qseg"
	quarantine = ".quarantined"
)

// Segment file format: magic, u32 CRC32-IEEE of the payload, u64
// payload length, payload.
var segMagic = []byte("QSEGF1")

// WAL record ops.
const (
	walAppend  = 'A'
	walReplace = 'R'
)

// Open opens (creating if needed) the store rooted at dir, replays the
// write-ahead log, verifies every segment, and reports what survived.
func Open(dir string) (*Store, *Recovery, error) {
	if err := os.MkdirAll(filepath.Join(dir, tablesDir), 0o755); err != nil {
		return nil, nil, fmt.Errorf("chunkstore: %w", err)
	}
	s := &Store{dir: dir, seq: map[string]uint64{}, units: map[string]Unit{}}
	rec := &Recovery{}

	// Replay the WAL first: records whose segment application was torn
	// by a crash are redone (idempotently), so the verification scan
	// below sees the directory a clean shutdown would have left.
	if err := s.replayWAL(rec); err != nil {
		return nil, nil, err
	}

	// Open the WAL for appending, truncated: every surviving record was
	// just re-applied durably.
	wal, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("chunkstore: open wal: %w", err)
	}
	if err := wal.Truncate(0); err != nil {
		wal.Close()
		return nil, nil, fmt.Errorf("chunkstore: truncate wal: %w", err)
	}
	s.wal = wal

	if err := s.scan(rec); err != nil {
		wal.Close()
		return nil, nil, err
	}
	return s, rec, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the write-ahead log. Further mutations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}

func (s *Store) walPath() string  { return filepath.Join(s.dir, walFile) }
func (s *Store) specPath() string { return filepath.Join(s.dir, specFile) }
func (s *Store) unitDir(u Unit) string {
	return filepath.Join(s.dir, tablesDir, u.String())
}

func segName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

// ---------- spec ----------

// PutSpec durably stores the catalog spec document (atomic replace),
// making recovery self-contained: a restarted worker can re-declare
// its tables before rebuilding them from segments.
func (s *Store) PutSpec(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("chunkstore: store closed")
	}
	return writeFileAtomic(s.specPath(), data)
}

// Spec returns the stored catalog spec document, if any.
func (s *Store) Spec() ([]byte, bool) {
	data, err := os.ReadFile(s.specPath())
	if err != nil {
		return nil, false
	}
	return data, true
}

// ---------- mutations ----------

// Append durably adds one segment (an encoded ingest batch) to a unit:
// WAL record fsynced first, then the segment file, then the WAL
// checkpoint. When Append returns nil the payload survives any crash.
func (s *Store) Append(u Unit, payload []byte) error {
	if err := validUnit(u); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("chunkstore: store closed")
	}
	seq := s.seq[u.String()] + 1
	if err := s.logAndApply(walRecord{op: walAppend, unit: u, seq: seq, segs: [][]byte{payload}}); err != nil {
		return err
	}
	s.seq[u.String()] = seq
	s.units[u.String()] = u
	return nil
}

// Replace durably replaces a unit's whole segment set (the /repl
// install and direct-load semantics): older segments are removed once
// the new set is applied. Idempotent under crash-and-replay.
func (s *Store) Replace(u Unit, payloads [][]byte) error {
	if err := validUnit(u); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("chunkstore: store closed")
	}
	start := s.seq[u.String()] + 1
	if err := s.logAndApply(walRecord{op: walReplace, unit: u, seq: start, segs: payloads}); err != nil {
		return err
	}
	s.seq[u.String()] = start + uint64(len(payloads)) - 1
	s.units[u.String()] = u
	return nil
}

// Segments returns a unit's segment payloads in application order,
// verifying each checksum (the /repl export path ships these bytes
// verbatim).
func (s *Store) Segments(u Unit) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.units[u.String()]; !ok {
		return nil, fmt.Errorf("chunkstore: no unit %s", u)
	}
	_, segs, err := readUnitDir(s.unitDir(u))
	return segs, err
}

// Has reports whether the store holds the unit.
func (s *Store) Has(u Unit) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.units[u.String()]
	return ok
}

// Units lists the stored units, sorted by name.
func (s *Store) Units() []Unit {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.units))
	for n := range s.units {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Unit, len(names))
	for i, n := range names {
		out[i] = s.units[n]
	}
	return out
}

// ---------- WAL ----------

// walRecord is one logged mutation, payloads included: the log is the
// atomicity device, so it must be able to redo the whole application.
type walRecord struct {
	op   byte
	unit Unit
	seq  uint64 // first segment sequence number
	segs [][]byte
}

// encodeWALRecord renders: op, u32 name length, name, u64 seq, u32
// segment count, {u64 length, payload}..., u32 CRC32 of all prior
// bytes of the record.
func encodeWALRecord(r walRecord) []byte {
	name := r.unit.String()
	size := 1 + 4 + len(name) + 8 + 4 + 4
	for _, s := range r.segs {
		size += 8 + len(s)
	}
	out := make([]byte, 0, size)
	out = append(out, r.op)
	out = binary.BigEndian.AppendUint32(out, uint32(len(name)))
	out = append(out, name...)
	out = binary.BigEndian.AppendUint64(out, r.seq)
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.segs)))
	for _, s := range r.segs {
		out = binary.BigEndian.AppendUint64(out, uint64(len(s)))
		out = append(out, s...)
	}
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out
}

// decodeWALRecords parses as many intact records as the buffer holds.
// A torn or corrupt tail — the expected shape of a crash mid-append —
// ends the parse silently: that record was never acknowledged.
func decodeWALRecords(data []byte) []walRecord {
	var out []walRecord
	pos := 0
	for pos < len(data) {
		start := pos
		if len(data)-pos < 1+4 {
			break
		}
		op := data[pos]
		if op != walAppend && op != walReplace {
			break
		}
		nameLen := int(binary.BigEndian.Uint32(data[pos+1 : pos+5]))
		pos += 5
		if nameLen <= 0 || nameLen > 4096 || pos+nameLen+8+4 > len(data) {
			break
		}
		name := string(data[pos : pos+nameLen])
		pos += nameLen
		seq := binary.BigEndian.Uint64(data[pos : pos+8])
		pos += 8
		nseg := int(binary.BigEndian.Uint32(data[pos : pos+4]))
		pos += 4
		if nseg < 0 || nseg > len(data) {
			break
		}
		segs := make([][]byte, 0, nseg)
		ok := true
		for i := 0; i < nseg; i++ {
			if pos+8 > len(data) {
				ok = false
				break
			}
			slen := binary.BigEndian.Uint64(data[pos : pos+8])
			pos += 8
			if slen > uint64(len(data)-pos) {
				ok = false
				break
			}
			segs = append(segs, data[pos:pos+int(slen)])
			pos += int(slen)
		}
		if !ok || pos+4 > len(data) {
			break
		}
		sum := binary.BigEndian.Uint32(data[pos : pos+4])
		if crc32.ChecksumIEEE(data[start:pos]) != sum {
			break
		}
		pos += 4
		unit, err := parseUnit(name)
		if err != nil {
			break
		}
		out = append(out, walRecord{op: op, unit: unit, seq: seq, segs: segs})
	}
	return out
}

// logAndApply is the commit protocol: (1) append the record to the WAL
// and fsync — from here the mutation survives a crash; (2) apply it to
// the segment files durably; (3) checkpoint by truncating the WAL —
// the segment files are now authoritative. Callers hold s.mu.
func (s *Store) logAndApply(r walRecord) error {
	rec := encodeWALRecord(r)
	if _, err := s.wal.Write(rec); err != nil {
		return fmt.Errorf("chunkstore: wal append: %w", err)
	}
	atomic.AddInt64(&s.counters.WALAppends, 1)
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("chunkstore: wal sync: %w", err)
	}
	atomic.AddInt64(&s.counters.WALFsyncs, 1)
	atomic.AddInt64(&s.counters.SegWrites, int64(len(r.segs)))
	if err := s.applyRecord(r); err != nil {
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("chunkstore: wal checkpoint: %w", err)
	}
	return nil
}

// applyRecord materializes a record's segment files. Idempotent: a
// segment already on disk and intact is kept, so recovery can replay a
// record regardless of how far the first application got.
func (s *Store) applyRecord(r walRecord) error {
	dir := s.unitDir(r.unit)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("chunkstore: %w", err)
	}
	for i, payload := range r.segs {
		path := filepath.Join(dir, segName(r.seq+uint64(i)))
		if existing, err := readSegmentFile(path); err == nil && string(existing) == string(payload) {
			continue
		}
		if err := writeFileAtomic(path, encodeSegment(payload)); err != nil {
			return err
		}
	}
	if r.op == walReplace {
		// Drop every segment outside the new set's range; a replace is
		// the unit's new complete content.
		lo, hi := r.seq, r.seq+uint64(len(r.segs))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("chunkstore: %w", err)
		}
		for _, e := range entries {
			seq, ok := parseSegName(e.Name())
			if !ok {
				continue
			}
			if seq < lo || seq >= hi {
				if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
					return fmt.Errorf("chunkstore: %w", err)
				}
			}
		}
	}
	return syncDir(dir)
}

// replayWAL redoes every intact WAL record (the crash window is
// between a record's fsync and its segment application completing).
func (s *Store) replayWAL(rec *Recovery) error {
	data, err := os.ReadFile(s.walPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("chunkstore: read wal: %w", err)
	}
	for _, r := range decodeWALRecords(data) {
		if err := s.applyRecord(r); err != nil {
			return err
		}
		rec.WALReplayed++
	}
	if rec.WALReplayed > 0 {
		logger.Info("wal.replayed", "dir", s.dir, "records", rec.WALReplayed)
	}
	return nil
}

// ---------- startup scan ----------

// scan walks tables/, verifying every unit. Intact units populate the
// in-memory index and the Recovery report; units failing verification
// are renamed aside and reported quarantined.
func (s *Store) scan(rec *Recovery) error {
	root := filepath.Join(s.dir, tablesDir)
	entries, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("chunkstore: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || strings.HasSuffix(e.Name(), quarantine) {
			continue
		}
		dir := filepath.Join(root, e.Name())
		u, perr := parseUnit(e.Name())
		if perr != nil {
			if err := quarantineDir(dir); err != nil {
				return err
			}
			atomic.AddInt64(&s.counters.Quarantines, 1)
			logger.Warn("unit.quarantined", "dir", e.Name(), "reason", perr)
			continue
		}
		maxSeq, segs, verr := readUnitDir(dir)
		if verr != nil {
			if err := quarantineDir(dir); err != nil {
				return err
			}
			atomic.AddInt64(&s.counters.Quarantines, 1)
			logger.Warn("unit.quarantined", "unit", u.String(), "reason", verr)
			rec.Quarantined = append(rec.Quarantined, u)
			continue
		}
		if len(segs) == 0 {
			continue
		}
		s.seq[u.String()] = maxSeq
		s.units[u.String()] = u
		rec.Units = append(rec.Units, RecoveredUnit{Unit: u, Segments: segs})
	}
	sort.Slice(rec.Units, func(i, j int) bool {
		return rec.Units[i].Unit.String() < rec.Units[j].Unit.String()
	})
	return nil
}

// quarantineDir renames a failed unit directory aside (never deletes:
// an operator may still want the bytes) under a name the scan skips.
func quarantineDir(dir string) error {
	dst := dir + quarantine
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = fmt.Sprintf("%s%s.%d", dir, quarantine, i)
	}
	if err := os.Rename(dir, dst); err != nil {
		return fmt.Errorf("chunkstore: quarantine %s: %w", dir, err)
	}
	return nil
}

// readUnitDir reads and verifies a unit's segments in sequence order.
func readUnitDir(dir string) (maxSeq uint64, segs [][]byte, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, nil, fmt.Errorf("chunkstore: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		seq, ok := parseSegName(e.Name())
		if !ok {
			if strings.HasSuffix(e.Name(), ".tmp") {
				continue // torn atomic write; the rename never happened
			}
			return 0, nil, fmt.Errorf("chunkstore: stray file %s in %s", e.Name(), dir)
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		payload, err := readSegmentFile(filepath.Join(dir, segName(seq)))
		if err != nil {
			return 0, nil, err
		}
		segs = append(segs, payload)
		maxSeq = seq
	}
	return maxSeq, segs, nil
}

func parseSegName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, segPrefix)
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, segSuffix)
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// ---------- segment files ----------

func encodeSegment(payload []byte) []byte {
	out := make([]byte, 0, len(segMagic)+4+8+len(payload))
	out = append(out, segMagic...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	return append(out, payload...)
}

// readSegmentFile reads one segment file, verifying magic, length, and
// checksum — a torn or bit-rotted segment is an error, never served.
func readSegmentFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chunkstore: %w", err)
	}
	payload, err := decodeSegment(data)
	if err != nil {
		return nil, fmt.Errorf("chunkstore: %s: %w", path, err)
	}
	return payload, nil
}

// decodeSegment verifies and strips one segment's framing. Pure
// function over untrusted bytes (the fuzz surface for the segment
// format): the declared length must match the actual payload exactly
// and the checksum must hold, so no length field can drive an
// allocation beyond the input's own size.
func decodeSegment(data []byte) ([]byte, error) {
	head := len(segMagic) + 4 + 8
	if len(data) < head || string(data[:len(segMagic)]) != string(segMagic) {
		return nil, fmt.Errorf("bad segment header")
	}
	sum := binary.BigEndian.Uint32(data[len(segMagic) : len(segMagic)+4])
	plen := binary.BigEndian.Uint64(data[len(segMagic)+4 : head])
	if plen != uint64(len(data)-head) {
		return nil, fmt.Errorf("segment length %d does not match file (%d payload bytes)",
			plen, len(data)-head)
	}
	payload := data[head:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("segment fails its checksum")
	}
	return payload, nil
}

// ---------- fs helpers ----------

// writeFileAtomic writes via temp-file, fsync, rename: readers see the
// old content or the new, never a torn write.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("chunkstore: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("chunkstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("chunkstore: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("chunkstore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("chunkstore: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames within it are durable.
// Filesystems that refuse directory fsync (some CI mounts) are
// tolerated: the data files themselves are already synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
