package chunkstore

import (
	"bytes"
	"testing"
)

// Fuzz targets for the store's two untrusted-bytes surfaces: segment
// file framing and WAL records. Both are what a crash, a torn write, or
// bit rot hands recovery, so the decoders must reject hostile input
// with an error (or a silent parse stop, for the WAL) — never a panic,
// and never an allocation driven past the input's own size by a length
// field. Hostile seeds live in testdata/fuzz/<target>/.

func FuzzSegmentDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeSegment(nil))
	f.Add(encodeSegment([]byte("payload bytes")))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := decodeSegment(data)
		if err != nil {
			return
		}
		if len(payload) > len(data) {
			t.Fatalf("decoded %d payload bytes from %d input bytes", len(payload), len(data))
		}
		// The framing is fixed-width and canonical, so any accepted
		// input must re-encode to itself exactly.
		if !bytes.Equal(encodeSegment(payload), data) {
			t.Fatalf("accepted segment does not round-trip")
		}
	})
}

func FuzzWALDecode(f *testing.F) {
	one := encodeWALRecord(walRecord{
		op: walAppend, unit: Unit{Table: "Object", Chunk: 7}, seq: 3,
		segs: [][]byte{[]byte("alpha"), []byte("bb")},
	})
	two := encodeWALRecord(walRecord{
		op: walReplace, unit: Unit{Table: "Filter", Shared: true}, seq: 0,
		segs: [][]byte{[]byte("x")},
	})
	f.Add(one)
	f.Add(append(append([]byte{}, one...), two...))
	f.Add(one[:len(one)-3]) // torn tail: the expected crash shape
	f.Fuzz(func(t *testing.T, data []byte) {
		recs := decodeWALRecords(data)
		var total int
		for _, r := range recs {
			if r.op != walAppend && r.op != walReplace {
				t.Fatalf("decoded record with op %q", r.op)
			}
			for _, s := range r.segs {
				total += len(s)
			}
		}
		if total > len(data) {
			t.Fatalf("decoded %d segment bytes from %d input bytes", total, len(data))
		}
		// Every accepted record must survive an encode/decode round trip
		// intact: what recovery replays is what was logged.
		for _, r := range recs {
			again := decodeWALRecords(encodeWALRecord(r))
			if len(again) != 1 {
				t.Fatalf("re-encoded record decoded to %d records", len(again))
			}
			g := again[0]
			if g.op != r.op || g.unit != r.unit || g.seq != r.seq || len(g.segs) != len(r.segs) {
				t.Fatalf("record round-trip mismatch: %+v vs %+v", g, r)
			}
			for i := range g.segs {
				if !bytes.Equal(g.segs[i], r.segs[i]) {
					t.Fatalf("segment %d round-trip mismatch", i)
				}
			}
		}
	})
}
