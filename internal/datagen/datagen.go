// Package datagen synthesizes the catalog the paper tests with (section
// 6.1.2): a PT1.1-like patch of Objects and Sources covering right
// ascension 358..5 degrees and declination -7..+7 degrees, replicated
// over the whole sky by the "duplicator" — a transformation of duplicate
// rows' RA and declination that maintains spatial distance and density
// via a non-linear stretch of right ascension as a function of
// declination.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sphgeom"
)

// PatchBox is the PT1.1 footprint: RA 358 to 365 (i.e. wrapping to 5),
// declination -7 to +7.
func PatchBox() sphgeom.Box { return sphgeom.NewBox(358, 365, -7, 7) }

// patchRAWidth and patchDeclHeight are the patch extents in degrees.
const (
	patchRAWidth    = 7.0
	patchDeclHeight = 14.0
	patchRAMin      = 358.0
	patchDeclMin    = -7.0
)

// Object is one synthesized catalog object (a star or galaxy).
type Object struct {
	ObjectID int64
	RA, Decl float64
	// Fluxes in the six LSST bands (u g r i z y), linear flux units.
	UFlux, GFlux, RFlux, IFlux, ZFlux, YFlux float64
	// UFluxSG is the small-galaxy model flux used by the paper's
	// aggregation example (AVG(uFlux_SG), section 5.3).
	UFluxSG float64
	// URadiusPS is the PSF radius used in the same example's predicate.
	URadiusPS float64
}

// Point returns the object's sky position.
func (o Object) Point() sphgeom.Point { return sphgeom.NewPoint(o.RA, o.Decl) }

// Source is one detection of an object at one epoch.
type Source struct {
	SourceID    int64
	ObjectID    int64
	TaiMidPoint float64 // observation time, MJD TAI
	RA, Decl    float64
	PsfFlux     float64
	PsfFluxErr  float64
	FilterID    int64
}

// Point returns the source's sky position.
func (s Source) Point() sphgeom.Point { return sphgeom.NewPoint(s.RA, s.Decl) }

// Config controls patch synthesis.
type Config struct {
	// Seed makes generation reproducible.
	Seed int64
	// ObjectsPerPatch is the number of objects synthesized in the PT1.1
	// footprint before duplication.
	ObjectsPerPatch int
	// MeanSourcesPerObject is the average number of detections per
	// object; the paper's dataset averages k ~= 41, scaled down here.
	MeanSourcesPerObject float64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Seed: 1, ObjectsPerPatch: 2000, MeanSourcesPerObject: 5}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ObjectsPerPatch < 0 {
		return fmt.Errorf("datagen: ObjectsPerPatch must be >= 0")
	}
	if c.MeanSourcesPerObject < 0 {
		return fmt.Errorf("datagen: MeanSourcesPerObject must be >= 0")
	}
	return nil
}

// Catalog is a generated Object/Source set.
type Catalog struct {
	Objects []Object
	Sources []Source
}

// GeneratePatch synthesizes the PT1.1 patch.
func GeneratePatch(cfg Config) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := &Catalog{}
	var nextSourceID int64 = 1
	for i := 0; i < cfg.ObjectsPerPatch; i++ {
		o := synthObject(rng, int64(i)+1)
		cat.Objects = append(cat.Objects, o)
		n := poissonish(rng, cfg.MeanSourcesPerObject)
		for k := 0; k < n; k++ {
			cat.Sources = append(cat.Sources, synthSource(rng, o, nextSourceID))
			nextSourceID++
		}
	}
	return cat, nil
}

// synthObject draws one object uniformly over the patch area with
// log-uniform fluxes spanning the survey's dynamic range.
func synthObject(rng *rand.Rand, id int64) Object {
	// Uniform over area: RA uniform, sin(decl) uniform in the band.
	ra := sphgeom.WrapRA(patchRAMin + rng.Float64()*patchRAWidth)
	sinLo := math.Sin(sphgeom.RadOf(patchDeclMin))
	sinHi := math.Sin(sphgeom.RadOf(patchDeclMin + patchDeclHeight))
	decl := sphgeom.DegOf(math.Asin(sinLo + rng.Float64()*(sinHi-sinLo)))
	flux := func() float64 {
		// AB magnitudes ~ uniform 16..27 -> flux = 10^(-(m+48.6)/2.5).
		m := 16 + rng.Float64()*11
		return math.Pow(10, -(m+48.6)/2.5)
	}
	return Object{
		ObjectID: id,
		RA:       ra,
		Decl:     decl,
		UFlux:    flux(), GFlux: flux(), RFlux: flux(),
		IFlux: flux(), ZFlux: flux(), YFlux: flux(),
		UFluxSG:   flux(),
		URadiusPS: 0.01 + rng.Float64()*0.1,
	}
}

// synthSource draws one detection of an object: position jittered by a
// sub-arcsecond astrometric error, flux jittered around the object flux.
func synthSource(rng *rand.Rand, o Object, id int64) Source {
	const jitter = 0.1 / 3600 // 0.1 arcsecond
	return Source{
		SourceID:    id,
		ObjectID:    o.ObjectID,
		TaiMidPoint: 54000 + rng.Float64()*3650, // a 10-year survey window
		RA:          sphgeom.WrapRA(o.RA + rng.NormFloat64()*jitter/math.Cos(sphgeom.RadOf(o.Decl))),
		Decl:        sphgeom.ClampDecl(o.Decl + rng.NormFloat64()*jitter),
		PsfFlux:     o.RFlux * (1 + 0.05*rng.NormFloat64()),
		PsfFluxErr:  o.RFlux * 0.01,
		FilterID:    int64(rng.Intn(6)),
	}
}

// poissonish draws a small Poisson-distributed count (Knuth's method;
// fine for the small means used here).
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // pathological mean; bound the loop
		}
	}
}

// DuplicateConfig controls sky replication.
type DuplicateConfig struct {
	// DeclBands is the number of declination bands to fill; the full
	// sky needs ceil(180/14) = 13. Fewer bands produce a partial sky
	// around the equator (bands fill outward from the equator).
	DeclBands int
	// SourceDeclLimit clips Source rows to |decl| <= limit, as the
	// paper did (+-54 degrees) for disk-space reasons; 0 means no clip.
	SourceDeclLimit float64
	// MaxCopies optionally caps total patch copies (0 = unlimited),
	// useful for small tests.
	MaxCopies int
}

// DefaultDuplicateConfig reproduces the paper's full-sky duplication
// with the Source table clipped to +-54 degrees declination.
func DefaultDuplicateConfig() DuplicateConfig {
	return DuplicateConfig{DeclBands: 13, SourceDeclLimit: 54}
}

// bandCenters returns the declination centers of the requested number of
// bands, filling outward from the equator: 0, +14, -14, +28, -28, ...
func bandCenters(n int) []float64 {
	var out []float64
	for i := 0; len(out) < n; i++ {
		if i == 0 {
			out = append(out, 0)
			continue
		}
		c := float64(i) * patchDeclHeight
		if c-patchDeclHeight/2 >= 90 {
			break
		}
		out = append(out, c)
		if len(out) < n {
			out = append(out, -c)
		}
	}
	return out
}

// Duplicate replicates the patch catalog over the sky. For each
// declination band the patch is copied around the full RA circle with
// the patch's internal RA offsets stretched by the band's 1/cos(decl)
// factor (the paper's non-linear transformation), preserving both
// angular distances and object density. Object and source identities are
// remapped so every copy is unique.
func Duplicate(patch *Catalog, cfg DuplicateConfig) *Catalog {
	if cfg.DeclBands <= 0 {
		cfg.DeclBands = 1
	}
	out := &Catalog{}
	// Stride for remapping ids: one block per copy.
	var maxObj, maxSrc int64
	for _, o := range patch.Objects {
		if o.ObjectID > maxObj {
			maxObj = o.ObjectID
		}
	}
	for _, s := range patch.Sources {
		if s.SourceID > maxSrc {
			maxSrc = s.SourceID
		}
	}
	objStride := maxObj + 1
	srcStride := maxSrc + 1

	copyNum := int64(0)
	for _, declC := range bandCenters(cfg.DeclBands) {
		cosC := math.Cos(sphgeom.RadOf(declC))
		// Copies needed to tile the band: each stretched copy spans
		// patchRAWidth/cos degrees of RA.
		n := int(math.Floor(360 * cosC / patchRAWidth))
		if n < 1 {
			n = 1
		}
		// Exact tiling: stretch so n copies cover 360 degrees.
		span := 360.0 / float64(n)
		stretch := span / patchRAWidth
		for i := 0; i < n; i++ {
			if cfg.MaxCopies > 0 && int(copyNum) >= cfg.MaxCopies {
				return out
			}
			raBase := float64(i) * span
			transform := func(ra, decl float64) (float64, float64) {
				u := sphgeom.WrapRA(ra - patchRAMin) // patch-relative [0, 7)
				return sphgeom.WrapRA(raBase + u*stretch), sphgeom.ClampDecl(decl + declC)
			}
			for _, o := range patch.Objects {
				ra, decl := transform(o.RA, o.Decl)
				dup := o
				dup.ObjectID = copyNum*objStride + o.ObjectID
				dup.RA, dup.Decl = ra, decl
				out.Objects = append(out.Objects, dup)
			}
			for _, s := range patch.Sources {
				ra, decl := transform(s.RA, s.Decl)
				if cfg.SourceDeclLimit > 0 && math.Abs(decl) > cfg.SourceDeclLimit {
					continue
				}
				dup := s
				dup.SourceID = copyNum*srcStride + s.SourceID
				dup.ObjectID = copyNum*objStride + s.ObjectID
				dup.RA, dup.Decl = ra, decl
				out.Sources = append(out.Sources, dup)
			}
			copyNum++
		}
	}
	return out
}

// Generate builds a duplicated catalog in one call.
func Generate(cfg Config, dup DuplicateConfig) (*Catalog, error) {
	patch, err := GeneratePatch(cfg)
	if err != nil {
		return nil, err
	}
	return Duplicate(patch, dup), nil
}
