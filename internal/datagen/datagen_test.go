package datagen

import (
	"math"
	"testing"

	"repro/internal/sphgeom"
)

func TestGeneratePatchDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, ObjectsPerPatch: 100, MeanSourcesPerObject: 3}
	a, err := GeneratePatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Objects) != len(b.Objects) || len(a.Sources) != len(b.Sources) {
		t.Fatal("non-deterministic sizes")
	}
	for i := range a.Objects {
		if a.Objects[i] != b.Objects[i] {
			t.Fatalf("object %d differs between runs", i)
		}
	}
}

func TestPatchInsideFootprint(t *testing.T) {
	cat, err := GeneratePatch(Config{Seed: 1, ObjectsPerPatch: 500, MeanSourcesPerObject: 2})
	if err != nil {
		t.Fatal(err)
	}
	box := PatchBox()
	for _, o := range cat.Objects {
		if !box.Contains(o.Point()) {
			t.Fatalf("object %d at (%g, %g) outside patch", o.ObjectID, o.RA, o.Decl)
		}
	}
	for _, s := range cat.Sources {
		// Sources are astrometrically jittered; allow a tiny margin.
		if !box.Dilated(0.01).Contains(s.Point()) {
			t.Fatalf("source %d at (%g, %g) outside dilated patch", s.SourceID, s.RA, s.Decl)
		}
	}
}

func TestPatchSourceCounts(t *testing.T) {
	cat, err := GeneratePatch(Config{Seed: 3, ObjectsPerPatch: 1000, MeanSourcesPerObject: 5})
	if err != nil {
		t.Fatal(err)
	}
	perObject := float64(len(cat.Sources)) / float64(len(cat.Objects))
	if perObject < 4 || perObject > 6 {
		t.Errorf("sources per object = %g, want ~5", perObject)
	}
	// Every source references an existing object.
	ids := map[int64]bool{}
	for _, o := range cat.Objects {
		ids[o.ObjectID] = true
	}
	for _, s := range cat.Sources {
		if !ids[s.ObjectID] {
			t.Fatalf("source %d references missing object %d", s.SourceID, s.ObjectID)
		}
	}
}

func TestPatchFluxesArephysical(t *testing.T) {
	cat, err := GeneratePatch(Config{Seed: 5, ObjectsPerPatch: 300, MeanSourcesPerObject: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range cat.Objects {
		for _, f := range []float64{o.UFlux, o.GFlux, o.RFlux, o.IFlux, o.ZFlux, o.YFlux, o.UFluxSG} {
			if f <= 0 || math.IsNaN(f) {
				t.Fatalf("non-physical flux %g on object %d", f, o.ObjectID)
			}
			// AB magnitude within survey range 16..27.
			m := -2.5*math.Log10(f) - 48.6
			if m < 15.9 || m > 27.1 {
				t.Fatalf("magnitude %g out of range", m)
			}
		}
	}
}

func TestDuplicateUniqueIDs(t *testing.T) {
	patch, err := GeneratePatch(Config{Seed: 2, ObjectsPerPatch: 50, MeanSourcesPerObject: 2})
	if err != nil {
		t.Fatal(err)
	}
	full := Duplicate(patch, DuplicateConfig{DeclBands: 3, MaxCopies: 40})
	objIDs := map[int64]bool{}
	for _, o := range full.Objects {
		if objIDs[o.ObjectID] {
			t.Fatalf("duplicate objectId %d", o.ObjectID)
		}
		objIDs[o.ObjectID] = true
	}
	srcIDs := map[int64]bool{}
	for _, s := range full.Sources {
		if srcIDs[s.SourceID] {
			t.Fatalf("duplicate sourceId %d", s.SourceID)
		}
		srcIDs[s.SourceID] = true
		if !objIDs[s.ObjectID] {
			t.Fatalf("source %d references missing object %d", s.SourceID, s.ObjectID)
		}
	}
}

func TestDuplicatePreservesDensity(t *testing.T) {
	// The non-linear RA stretch must keep object density roughly
	// constant across declination bands (the paper's stated goal).
	patch, err := GeneratePatch(Config{Seed: 9, ObjectsPerPatch: 2000, MeanSourcesPerObject: 0})
	if err != nil {
		t.Fatal(err)
	}
	full := Duplicate(patch, DuplicateConfig{DeclBands: 5})
	density := func(box sphgeom.Box) float64 {
		n := 0
		for _, o := range full.Objects {
			if box.Contains(o.Point()) {
				n++
			}
		}
		return float64(n) / box.Area()
	}
	equator := density(sphgeom.NewBox(30, 50, -5, 5))
	high := density(sphgeom.NewBox(30, 50, 25, 33))
	if equator == 0 || high == 0 {
		t.Fatal("empty sample boxes")
	}
	ratio := equator / high
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("density ratio equator/high = %g, want ~1 (within 40%%)", ratio)
	}
}

func TestDuplicatePreservesPairDistances(t *testing.T) {
	// Angular separations between close pairs must survive duplication
	// approximately (the transform is a stretch in RA exactly matched
	// by the cos(decl) compression).
	patch := &Catalog{Objects: []Object{
		{ObjectID: 1, RA: 0.0, Decl: 0.0},
		{ObjectID: 2, RA: 0.05, Decl: 0.02},
	}}
	full := Duplicate(patch, DuplicateConfig{DeclBands: 5})
	orig := sphgeom.AngSepDeg(0.0, 0.0, 0.05, 0.02)
	// Examine each copy: find consecutive pairs by id stride (stride=3).
	byID := map[int64]Object{}
	for _, o := range full.Objects {
		byID[o.ObjectID] = o
	}
	checked := 0
	for copyNum := int64(0); copyNum < 100; copyNum++ {
		a, okA := byID[copyNum*3+1]
		b, okB := byID[copyNum*3+2]
		if !okA || !okB {
			continue
		}
		got := sphgeom.AngSep(a.Point(), b.Point())
		if math.Abs(got-orig)/orig > 0.15 {
			t.Fatalf("copy %d distorted pair distance: %g vs %g (decl %g)",
				copyNum, got, orig, a.Decl)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d copies checked", checked)
	}
}

func TestDuplicateSourceDeclClip(t *testing.T) {
	patch, err := GeneratePatch(Config{Seed: 4, ObjectsPerPatch: 100, MeanSourcesPerObject: 2})
	if err != nil {
		t.Fatal(err)
	}
	full := Duplicate(patch, DefaultDuplicateConfig())
	for _, s := range full.Sources {
		if math.Abs(s.Decl) > 54 {
			t.Fatalf("source at decl %g violates +-54 clip", s.Decl)
		}
	}
	// Objects are NOT clipped.
	sawPolar := false
	for _, o := range full.Objects {
		if math.Abs(o.Decl) > 54 {
			sawPolar = true
			break
		}
	}
	if !sawPolar {
		t.Error("full-sky objects should extend past +-54 decl")
	}
}

func TestDuplicateBandCount(t *testing.T) {
	// 13 bands tile the full sky in declination.
	centers := bandCenters(13)
	if len(centers) != 13 {
		t.Fatalf("bands = %d", len(centers))
	}
	lo, hi := 0.0, 0.0
	for _, c := range centers {
		lo = math.Min(lo, c-patchDeclHeight/2)
		hi = math.Max(hi, c+patchDeclHeight/2)
	}
	if lo > -90 || hi < 90 {
		t.Errorf("13 bands cover [%g, %g], want the full sky", lo, hi)
	}
}

func TestDuplicateMaxCopies(t *testing.T) {
	patch, _ := GeneratePatch(Config{Seed: 1, ObjectsPerPatch: 10, MeanSourcesPerObject: 0})
	full := Duplicate(patch, DuplicateConfig{DeclBands: 13, MaxCopies: 7})
	if got := len(full.Objects); got != 70 {
		t.Errorf("objects = %d, want 70 (7 copies x 10)", got)
	}
}

func TestGenerateFullPipeline(t *testing.T) {
	cat, err := Generate(
		Config{Seed: 1, ObjectsPerPatch: 50, MeanSourcesPerObject: 1},
		DuplicateConfig{DeclBands: 2, SourceDeclLimit: 54},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Objects) == 0 || len(cat.Sources) == 0 {
		t.Fatal("empty catalog")
	}
	// Paper ratio check at tiny scale: duplication multiplies both
	// tables by the same copy count (before decl clipping).
	if len(cat.Objects)%50 != 0 {
		t.Errorf("objects %d not a multiple of the patch size", len(cat.Objects))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := GeneratePatch(Config{ObjectsPerPatch: -1}); err == nil {
		t.Error("negative objects should fail")
	}
	if _, err := GeneratePatch(Config{MeanSourcesPerObject: -1}); err == nil {
		t.Error("negative mean should fail")
	}
}

func BenchmarkGeneratePatch(b *testing.B) {
	cfg := Config{Seed: 1, ObjectsPerPatch: 1000, MeanSourcesPerObject: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GeneratePatch(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDuplicateFullSky(b *testing.B) {
	patch, _ := GeneratePatch(Config{Seed: 1, ObjectsPerPatch: 200, MeanSourcesPerObject: 2})
	cfg := DefaultDuplicateConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Duplicate(patch, cfg)
	}
}
