package datagen

import (
	"repro/internal/meta"
	"repro/internal/partition"
	"repro/internal/sqlengine"
)

// This file makes datagen a spec + row-source producer for the paper's
// catalog: the declarative LSST catalog definition (the spec the
// frontend's registry is built from) and the per-row converters ingest
// consumes. Sizes are the paper's Table 1 / section 6.1.2 estimates.

// LSSTSpec returns the declarative definition of the paper's catalog:
// Object is the director table (spatially partitioned by its own
// position, owning the objectId key and the secondary index), Source
// and ForcedSource are its children (partitioned by objectId, stored
// with their director row), and Filter is a replicated dimension
// table. Object and Source participate in overlap storage; ForcedSource
// carries no position and does not.
func LSSTSpec() meta.CatalogSpec {
	return meta.CatalogSpec{
		Database: "LSST",
		Tables: []meta.TableSpec{
			{
				Name:          "Object",
				Kind:          meta.KindDirector,
				Columns:       meta.ObjectSchema(),
				RAColumn:      "ra_PS",
				DeclColumn:    "decl_PS",
				DirectorKey:   "objectId",
				Overlap:       true,
				PaperRows:     26e9,
				PaperRowBytes: 2048,
				EvalRows:      1.7e9,
				EvalBytes:     1.824e12,
			},
			{
				Name:          "Source",
				Kind:          meta.KindChild,
				Director:      "Object",
				Columns:       meta.SourceSchema(),
				RAColumn:      "ra",
				DeclColumn:    "decl",
				DirectorKey:   "objectId",
				Overlap:       true,
				PaperRows:     1.8e12,
				PaperRowBytes: 650,
				EvalRows:      55e9,
				EvalBytes:     30e12,
			},
			{
				Name:          "ForcedSource",
				Kind:          meta.KindChild,
				Director:      "Object",
				Columns:       meta.ForcedSourceSchema(),
				DirectorKey:   "objectId",
				PaperRows:     21e12,
				PaperRowBytes: 30,
			},
			{
				Name:    "Filter",
				Kind:    meta.KindReplicated,
				Columns: meta.FilterSchema(),
			},
		},
	}
}

// LSSTRegistry builds the paper's catalog registry from LSSTSpec.
func LSSTRegistry(chunker *partition.Chunker) *meta.Registry {
	r, err := meta.NewRegistryFromSpec(LSSTSpec(), chunker)
	if err != nil {
		// The spec is a package constant; failing to build it is a bug.
		panic(err)
	}
	return r
}

// ObjectUserRow renders an Object in meta.ObjectSchema order, without
// the system-computed chunkId/subChunkId columns.
func ObjectUserRow(o Object) sqlengine.Row {
	return sqlengine.Row{
		o.ObjectID, o.RA, o.Decl,
		o.UFlux, o.GFlux, o.RFlux, o.IFlux, o.ZFlux, o.YFlux,
		o.UFluxSG, o.URadiusPS,
	}
}

// SourceUserRow renders a Source in meta.SourceSchema order, without
// the chunkId/subChunkId columns.
func SourceUserRow(s Source) sqlengine.Row {
	return sqlengine.Row{
		s.SourceID, s.ObjectID, s.TaiMidPoint,
		s.RA, s.Decl, s.PsfFlux, s.PsfFluxErr, s.FilterID,
	}
}

// FilterRows returns the six-band LSST filter dimension table.
func FilterRows() []sqlengine.Row {
	return []sqlengine.Row{
		{int64(0), "u"}, {int64(1), "g"}, {int64(2), "r"},
		{int64(3), "i"}, {int64(4), "z"}, {int64(5), "y"},
	}
}
