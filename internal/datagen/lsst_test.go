package datagen

import (
	"testing"

	"repro/internal/meta"
	"repro/internal/partition"
)

func TestLSSTSpecBuildsRegistry(t *testing.T) {
	spec := LSSTSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	ch, err := partition.NewChunker(partition.Config{NumStripes: 18, NumSubStripesPerStripe: 4, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r := LSSTRegistry(ch)
	obj, err := r.Table("object") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if obj.Kind != meta.KindDirector || !obj.Partitioned || obj.RAColumn != "ra_PS" ||
		obj.DirectorKey != "objectId" || !obj.Overlap {
		t.Errorf("Object info: %+v", obj)
	}
	src, err := r.Table("Source")
	if err != nil {
		t.Fatal(err)
	}
	if src.Kind != meta.KindChild || src.Director != "Object" || src.RAColumn != "ra" {
		t.Errorf("Source info: %+v", src)
	}
	filter, err := r.Table("Filter")
	if err != nil {
		t.Fatal(err)
	}
	if filter.Kind != meta.KindReplicated || filter.Partitioned {
		t.Errorf("Filter info: %+v", filter)
	}
	if got := len(r.TableNames()); got != 4 {
		t.Errorf("tables: %v", r.TableNames())
	}
}

func TestUserRowsMatchSchemas(t *testing.T) {
	patch, err := GeneratePatch(Config{Seed: 1, ObjectsPerPatch: 3, MeanSourcesPerObject: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(patch.Objects) == 0 || len(patch.Sources) == 0 {
		t.Fatal("empty patch")
	}
	// User rows carry everything except the system chunkId/subChunkId.
	if got, want := len(ObjectUserRow(patch.Objects[0])), len(meta.ObjectSchema())-2; got != want {
		t.Errorf("object user row has %d values, want %d", got, want)
	}
	if got, want := len(SourceUserRow(patch.Sources[0])), len(meta.SourceSchema())-2; got != want {
		t.Errorf("source user row has %d values, want %d", got, want)
	}
	if got, want := len(FilterRows()), 6; got != want {
		t.Errorf("filter rows = %d, want %d", got, want)
	}
}
