package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sphgeom"
)

func paperChunker(t testing.TB) *Chunker {
	t.Helper()
	ch, err := NewChunker(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NumStripes: 0, NumSubStripesPerStripe: 1},
		{NumStripes: 1, NumSubStripesPerStripe: 0},
		{NumStripes: 1, NumSubStripesPerStripe: 1, Overlap: -1},
		{NumStripes: 1, NumSubStripesPerStripe: 1, Overlap: 20},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Errorf("paper config invalid: %v", err)
	}
}

func TestPaperGeometry(t *testing.T) {
	ch := paperChunker(t)
	cfg := ch.Config()
	// Paper: stripe height ~2.11 deg, sub-stripe ~0.176 deg.
	if math.Abs(cfg.StripeHeight()-2.1176) > 0.01 {
		t.Errorf("stripe height = %g, want ~2.11", cfg.StripeHeight())
	}
	if math.Abs(cfg.SubStripeHeight()-0.1765) > 0.001 {
		t.Errorf("sub-stripe height = %g, want ~0.176", cfg.SubStripeHeight())
	}
	// Paper: 8983 chunks. Our equal-area assignment differs slightly in
	// rounding; demand the same order (within 5%).
	total := ch.TotalChunks()
	if total < 8500 || total > 9500 {
		t.Errorf("total chunks = %d, want ~8983", total)
	}
	// Equatorial chunk area ~4.5 deg^2.
	equatorStripe := cfg.NumStripes / 2
	id := ch.chunkIDFor(equatorStripe, 0)
	b, err := ch.ChunkBounds(id)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Area()-4.5) > 0.5 {
		t.Errorf("equatorial chunk area = %g, want ~4.5", b.Area())
	}
	// Subchunk area ~0.031 deg^2.
	sb, err := ch.SubChunkBounds(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sb.Area()-0.031) > 0.005 {
		t.Errorf("subchunk area = %g, want ~0.031", sb.Area())
	}
}

func TestLocateInBounds(t *testing.T) {
	ch := paperChunker(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := sphgeom.NewPoint(rng.Float64()*360, rng.Float64()*180-90)
		id, sub := ch.Locate(p)
		b, err := ch.ChunkBounds(id)
		if err != nil {
			t.Fatalf("Locate(%v) gave invalid chunk %d: %v", p, id, err)
		}
		if !b.Contains(p) {
			t.Fatalf("chunk %d bounds %v do not contain %v", id, b, p)
		}
		sb, err := ch.SubChunkBounds(id, sub)
		if err != nil {
			t.Fatalf("invalid subchunk %d of chunk %d: %v", sub, id, err)
		}
		if !sb.Contains(p) {
			t.Fatalf("subchunk %d_%d bounds %v do not contain %v", id, sub, sb, p)
		}
	}
}

func TestLocatePoles(t *testing.T) {
	ch := paperChunker(t)
	for _, p := range []sphgeom.Point{
		{RA: 0, Decl: 90}, {RA: 123, Decl: -90}, {RA: 359.999, Decl: 89.999},
	} {
		id, sub := ch.Locate(p)
		b, err := ch.ChunkBounds(id)
		if err != nil || !b.Contains(p) {
			t.Errorf("polar point %v misplaced in chunk %d (%v, err %v)", p, id, b, err)
		}
		if _, err := ch.SubChunkBounds(id, sub); err != nil {
			t.Errorf("polar subchunk invalid: %v", err)
		}
	}
}

func TestChunkIDsDenseAndUnique(t *testing.T) {
	ch := paperChunker(t)
	seen := make(map[ChunkID]bool)
	for s := 0; s < ch.NumStripes(); s++ {
		for c := 0; c < ch.ChunksInStripe(s); c++ {
			id := ch.chunkIDFor(s, c)
			if seen[id] {
				t.Fatalf("duplicate chunk id %d", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != ch.TotalChunks() {
		t.Fatalf("id count %d != total %d", len(seen), ch.TotalChunks())
	}
	// Dense: 0..total-1.
	for i := 0; i < ch.TotalChunks(); i++ {
		if !seen[ChunkID(i)] {
			t.Fatalf("missing chunk id %d", i)
		}
	}
}

func TestDecomposeRoundTrip(t *testing.T) {
	ch := paperChunker(t)
	for i := 0; i < ch.TotalChunks(); i += 97 {
		s, c, err := ch.decompose(ChunkID(i))
		if err != nil {
			t.Fatal(err)
		}
		if got := ch.chunkIDFor(s, c); got != ChunkID(i) {
			t.Fatalf("round trip %d -> (%d,%d) -> %d", i, s, c, got)
		}
	}
	if _, _, err := ch.decompose(ChunkID(ch.TotalChunks())); err == nil {
		t.Error("out-of-range decompose should fail")
	}
	if _, _, err := ch.decompose(ChunkID(-1)); err == nil {
		t.Error("negative decompose should fail")
	}
}

func TestChunkBoundsTileSphere(t *testing.T) {
	// Bounds of all chunks in a stripe must tile [0,360) without gaps.
	ch := paperChunker(t)
	for _, s := range []int{0, 10, 42, 84} {
		total := 0.0
		for c := 0; c < ch.ChunksInStripe(s); c++ {
			b, err := ch.ChunkBounds(ch.chunkIDFor(s, c))
			if err != nil {
				t.Fatal(err)
			}
			total += b.RAExtent()
		}
		if math.Abs(total-360) > 1e-6 {
			t.Errorf("stripe %d chunks cover %g deg RA, want 360", s, total)
		}
	}
}

func TestChunksInSmallBox(t *testing.T) {
	ch := paperChunker(t)
	// A 1-deg^2 box near the equator should touch only a handful of
	// ~4.5 deg^2 chunks (at most 4 with aligned edges).
	box := sphgeom.NewBox(1, 2, 3, 4)
	ids := ch.ChunksIn(box)
	if len(ids) == 0 || len(ids) > 6 {
		t.Errorf("1 deg^2 box hit %d chunks, want 1..6", len(ids))
	}
	// Every chunk containing a point of the box must be present.
	id, _ := ch.Locate(sphgeom.NewPoint(1.5, 3.5))
	found := false
	for _, x := range ids {
		if x == id {
			found = true
		}
	}
	if !found {
		t.Errorf("ChunksIn missing chunk %d containing box center", id)
	}
}

func TestChunksInFullSky(t *testing.T) {
	ch := paperChunker(t)
	ids := ch.ChunksIn(sphgeom.FullSky())
	if len(ids) != ch.TotalChunks() {
		t.Errorf("full sky hit %d chunks, want %d", len(ids), ch.TotalChunks())
	}
}

func TestChunksInWrappingBox(t *testing.T) {
	ch := paperChunker(t)
	// PT1.1 patch wraps RA through 0.
	box := sphgeom.NewBox(358, 365, -7, 7)
	ids := ch.ChunksIn(box)
	if len(ids) == 0 {
		t.Fatal("wrapping box hit no chunks")
	}
	want := map[ChunkID]bool{}
	for _, ra := range []float64{358.5, 0.5, 4.5} {
		id, _ := ch.Locate(sphgeom.NewPoint(ra, 0))
		want[id] = true
	}
	got := map[ChunkID]bool{}
	for _, id := range ids {
		got[id] = true
	}
	for id := range want {
		if !got[id] {
			t.Errorf("wrapping cover missing chunk %d", id)
		}
	}
}

func TestChunksInCoverProperty(t *testing.T) {
	// Any point inside a region must be in a chunk listed by ChunksIn.
	ch := paperChunker(t)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		ra := rng.Float64() * 360
		decl := rng.Float64()*160 - 80
		box := sphgeom.NewBox(ra, ra+rng.Float64()*10, decl, decl+rng.Float64()*10)
		ids := ch.ChunksIn(box)
		inCover := make(map[ChunkID]bool, len(ids))
		for _, id := range ids {
			inCover[id] = true
		}
		for k := 0; k < 10; k++ {
			p := sphgeom.NewPoint(
				box.RAMin+rng.Float64()*box.RAExtent(),
				box.DeclMin+rng.Float64()*(box.DeclMax-box.DeclMin),
			)
			if !box.Contains(p) {
				continue
			}
			id, _ := ch.Locate(p)
			if !inCover[id] {
				t.Fatalf("point %v in box %v is in chunk %d, not in cover (%d chunks)", p, box, id, len(ids))
			}
		}
	}
}

func TestSubChunksIn(t *testing.T) {
	ch := paperChunker(t)
	id, sub := ch.Locate(sphgeom.NewPoint(10, 0))
	sb, err := ch.SubChunkBounds(id, sub)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := ch.SubChunksIn(id, sb)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range subs {
		if s == sub {
			found = true
		}
	}
	if !found {
		t.Errorf("SubChunksIn missing subchunk %d", sub)
	}
	all, err := ch.AllSubChunks(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) >= len(all) {
		t.Errorf("restricted subchunk cover (%d) not smaller than all (%d)", len(subs), len(all))
	}
}

func TestOverlapMembership(t *testing.T) {
	ch := paperChunker(t)
	id, _ := ch.Locate(sphgeom.NewPoint(10, 0))
	b, err := ch.ChunkBounds(id)
	if err != nil {
		t.Fatal(err)
	}
	// A point just outside the RA max edge, within overlap.
	p := sphgeom.NewPoint(b.RAMax+ch.Config().Overlap/2, 0)
	in, err := ch.InOverlap(id, p)
	if err != nil || !in {
		t.Errorf("point just outside edge should be in overlap (got %v, err %v)", in, err)
	}
	// A point inside the chunk is NOT in the overlap.
	inside := sphgeom.NewPoint((b.RAMin+b.RAMax)/2, 0)
	in, err = ch.InOverlap(id, inside)
	if err != nil || in {
		t.Errorf("interior point should not be in overlap (got %v, err %v)", in, err)
	}
	// A point far away is not in the overlap.
	far := sphgeom.NewPoint(b.RAMax+5, 0)
	in, err = ch.InOverlap(id, far)
	if err != nil || in {
		t.Errorf("distant point should not be in overlap (got %v, err %v)", in, err)
	}
}

func TestOverlapCompleteness(t *testing.T) {
	// Fundamental overlap invariant (paper section 4.4): for any two points
	// p, q with AngSep(p, q) < Overlap, the chunk owning p must see q
	// either as a member or as overlap.
	ch := paperChunker(t)
	rng := rand.New(rand.NewSource(5))
	overlap := ch.Config().Overlap
	for i := 0; i < 3000; i++ {
		p := sphgeom.NewPoint(rng.Float64()*360, rng.Float64()*160-80)
		theta := rng.Float64() * 2 * math.Pi
		r := rng.Float64() * overlap * 0.98
		q := sphgeom.NewPoint(
			p.RA+r*math.Cos(theta)/math.Cos(sphgeom.RadOf(p.Decl)),
			p.Decl+r*math.Sin(theta),
		)
		if sphgeom.AngSep(p, q) >= overlap {
			continue
		}
		idP, _ := ch.Locate(p)
		idQ, _ := ch.Locate(q)
		if idP == idQ {
			continue
		}
		in, err := ch.InOverlap(idP, q)
		if err != nil {
			t.Fatal(err)
		}
		if !in {
			t.Fatalf("q=%v at %.5f deg from p=%v not visible from chunk %d (q in %d)",
				q, sphgeom.AngSep(p, q), p, idP, idQ)
		}
	}
}

func TestSubChunkOverlapCompleteness(t *testing.T) {
	ch := paperChunker(t)
	rng := rand.New(rand.NewSource(17))
	overlap := ch.Config().Overlap
	for i := 0; i < 2000; i++ {
		p := sphgeom.NewPoint(rng.Float64()*360, rng.Float64()*160-80)
		theta := rng.Float64() * 2 * math.Pi
		r := rng.Float64() * overlap * 0.98
		q := sphgeom.NewPoint(
			p.RA+r*math.Cos(theta)/math.Cos(sphgeom.RadOf(p.Decl)),
			p.Decl+r*math.Sin(theta),
		)
		if sphgeom.AngSep(p, q) >= overlap {
			continue
		}
		idP, subP := ch.Locate(p)
		idQ, subQ := ch.Locate(q)
		if idP == idQ && subP == subQ {
			continue
		}
		in, err := ch.InSubChunkOverlap(idP, subP, q)
		if err != nil {
			t.Fatal(err)
		}
		if !in {
			t.Fatalf("q=%v at %.5f deg from p=%v not in overlap of subchunk %d_%d",
				q, sphgeom.AngSep(p, q), p, idP, subP)
		}
	}
}

func TestLocateQuickProperty(t *testing.T) {
	ch := paperChunker(t)
	f := func(ra, decl float64) bool {
		if math.IsNaN(ra) || math.IsInf(ra, 0) || math.IsNaN(decl) || math.IsInf(decl, 0) {
			return true
		}
		p := sphgeom.NewPoint(sphgeom.WrapRA(ra), sphgeom.ClampDecl(decl))
		id, sub := ch.Locate(p)
		b, err := ch.ChunkBounds(id)
		if err != nil || !b.Contains(p) {
			return false
		}
		sb, err := ch.SubChunkBounds(id, sub)
		return err == nil && sb.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSmallConfig(t *testing.T) {
	// A tiny config used throughout the repo's integration tests.
	ch, err := NewChunker(Config{NumStripes: 12, NumSubStripesPerStripe: 4, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ch.TotalChunks() < 12 {
		t.Errorf("small config only %d chunks", ch.TotalChunks())
	}
	p := sphgeom.NewPoint(45, 22)
	id, sub := ch.Locate(p)
	sb, err := ch.SubChunkBounds(id, sub)
	if err != nil || !sb.Contains(p) {
		t.Errorf("small config misplaced %v (err %v)", p, err)
	}
}

func BenchmarkLocate(b *testing.B) {
	ch := paperChunker(b)
	rng := rand.New(rand.NewSource(1))
	pts := make([]sphgeom.Point, 1024)
	for i := range pts {
		pts[i] = sphgeom.NewPoint(rng.Float64()*360, rng.Float64()*180-90)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Locate(pts[i%len(pts)])
	}
}

func BenchmarkChunksInBox(b *testing.B) {
	ch := paperChunker(b)
	box := sphgeom.NewBox(0, 10, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.ChunksIn(box)
	}
}
