package partition

import (
	"math/rand"
	"testing"

	"repro/internal/sphgeom"
)

// bruteOverlapChunks is the ground truth for OverlapChunks: test every
// chunk on the sphere with InOverlap.
func bruteOverlapChunks(ch *Chunker, p sphgeom.Point) map[ChunkID]bool {
	own, _ := ch.Locate(p)
	out := map[ChunkID]bool{}
	for _, c := range ch.AllChunks() {
		if c == own {
			continue
		}
		if in, err := ch.InOverlap(c, p); err == nil && in {
			out[c] = true
		}
	}
	return out
}

// legacyProbeOverlapChunks reproduces the pre-derivation heuristic: a
// fixed ±3*margin probe box filtered through InOverlap. Kept here only
// to prove the regression test below would have caught it.
func legacyProbeOverlapChunks(ch *Chunker, p sphgeom.Point) map[ChunkID]bool {
	margin := ch.Config().Overlap
	own, _ := ch.Locate(p)
	probe := sphgeom.NewBox(p.RA-margin*3, p.RA+margin*3, p.Decl-margin*3, p.Decl+margin*3)
	out := map[ChunkID]bool{}
	for _, c := range ch.ChunksIn(probe) {
		if c == own {
			continue
		}
		if in, err := ch.InOverlap(c, p); err == nil && in {
			out[c] = true
		}
	}
	return out
}

func overlapChunker(t *testing.T) *Chunker {
	t.Helper()
	ch, err := NewChunker(Config{NumStripes: 18, NumSubStripesPerStripe: 4, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// TestOverlapChunksMatchesBruteForce checks the derived probe against
// the exhaustive InOverlap sweep at every declination regime,
// including the poles where the dilated bounds go full-circle.
func TestOverlapChunksMatchesBruteForce(t *testing.T) {
	ch := overlapChunker(t)
	rng := rand.New(rand.NewSource(11))
	points := []sphgeom.Point{
		sphgeom.NewPoint(0.01, 0.01),     // chunk corner near the equator
		sphgeom.NewPoint(359.99, -0.3),   // wrap meridian
		sphgeom.NewPoint(12, 89.7),       // polar cap
		sphgeom.NewPoint(200, -89.9),     // south polar cap
		sphgeom.NewPoint(45.0, 79.999),   // high-decl stripe boundary
		sphgeom.NewPoint(180.0001, 70.0), // high-decl chunk boundary
	}
	for i := 0; i < 300; i++ {
		points = append(points, sphgeom.NewPoint(rng.Float64()*360, -90+rng.Float64()*180))
	}
	for _, p := range points {
		want := bruteOverlapChunks(ch, p)
		got := ch.OverlapChunks(p)
		if len(got) != len(want) {
			t.Fatalf("point %v: got %d overlap chunks %v, want %d %v", p, len(got), got, len(want), keys(want))
		}
		for _, c := range got {
			if !want[c] {
				t.Fatalf("point %v: chunk %d reported but not in overlap", p, c)
			}
		}
	}
}

func keys(m map[ChunkID]bool) []ChunkID {
	out := make([]ChunkID, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	return out
}

// TestOverlapChunksMarginBoundary places a point just inside and just
// outside the overlap margin of the chunk below it: the margin is an
// exact declination distance, so the boundary is sharp.
func TestOverlapChunksMarginBoundary(t *testing.T) {
	ch := overlapChunker(t)
	margin := ch.Config().Overlap
	// Stripe bands are [-90+10k, -90+10k+10); decl 10 is a boundary.
	const boundary = 10.0
	below, _ := ch.Locate(sphgeom.NewPoint(33, boundary-0.01))

	contains := func(cs []ChunkID, c ChunkID) bool {
		for _, x := range cs {
			if x == c {
				return true
			}
		}
		return false
	}
	inside := sphgeom.NewPoint(33, boundary+margin-0.01)
	if !contains(ch.OverlapChunks(inside), below) {
		t.Errorf("point %g inside the margin of chunk %d not reported", inside.Decl, below)
	}
	outside := sphgeom.NewPoint(33, boundary+margin+0.01)
	if contains(ch.OverlapChunks(outside), below) {
		t.Errorf("point %g outside the margin of chunk %d reported", outside.Decl, below)
	}
}

// TestOverlapProbeHighDeclinationRegression pins the bug the derived
// probe fixes: near the poles the overlap margin in RA widens by
// 1/cos(decl), which exceeds the old fixed 3x dilation beyond ~70.5
// degrees — the old probe provably missed chunks whose overlap the
// point is inside.
func TestOverlapProbeHighDeclinationRegression(t *testing.T) {
	ch := overlapChunker(t)
	missed := 0
	// Sweep points at high declination sitting 2-3 margins away (in
	// RA) from a chunk boundary: inside the neighbor's dilated bounds
	// (raMargin there is ~3+ margins), outside the old probe.
	for ra := 0.25; ra < 360; ra += 7.3 {
		p := sphgeom.NewPoint(ra, 78.5)
		want := bruteOverlapChunks(ch, p)
		old := legacyProbeOverlapChunks(ch, p)
		got := ch.OverlapChunks(p)
		if len(got) != len(want) {
			t.Fatalf("point %v: derived probe found %v, brute force %v", p, got, keys(want))
		}
		missed += len(want) - len(old)
	}
	if missed <= 0 {
		t.Fatalf("expected the legacy 3x-margin probe to miss high-declination overlap chunks; it missed %d", missed)
	}
}
