// Package partition implements Qserv's two-level spherical partitioning
// (paper sections 4.4 and 5.2).
//
// The sphere is divided into NumStripes equal-height declination stripes.
// Each stripe is divided into chunks whose RA width is chosen so chunk
// area is roughly constant across stripes (fewer chunks per stripe near
// the poles). Each stripe is further divided into NumSubStripesPerStripe
// sub-stripes, and each chunk into subchunks, again with roughly equal
// area. A row is assigned a chunkId and a subChunkId from its (ra, decl).
//
// The paper's test configuration — 85 stripes of 12 sub-stripes, giving a
// stripe height of ~2.11 degrees, chunk area ~4.5 deg^2, subchunk area
// ~0.031 deg^2, and 8983 chunks with Source clipped to |decl| <= 54 — is
// available as PaperConfig.
package partition

import (
	"fmt"
	"math"

	"repro/internal/sphgeom"
)

// Config describes a two-level partitioning of the sphere.
type Config struct {
	// NumStripes is the number of equal-height declination stripes.
	NumStripes int
	// NumSubStripesPerStripe is the number of sub-stripes per stripe.
	NumSubStripesPerStripe int
	// Overlap is the margin, in degrees, stored with each partition so
	// spatial joins within Overlap of a border need no remote data.
	Overlap float64
}

// PaperConfig returns the configuration used in the paper's 150-node test:
// 85 stripes, 12 sub-stripes per stripe, 1 arc-minute overlap.
func PaperConfig() Config {
	return Config{NumStripes: 85, NumSubStripesPerStripe: 12, Overlap: 0.01667}
}

// Validate checks the configuration for usability.
func (c Config) Validate() error {
	if c.NumStripes < 1 {
		return fmt.Errorf("partition: NumStripes must be >= 1, got %d", c.NumStripes)
	}
	if c.NumSubStripesPerStripe < 1 {
		return fmt.Errorf("partition: NumSubStripesPerStripe must be >= 1, got %d", c.NumSubStripesPerStripe)
	}
	if c.Overlap < 0 {
		return fmt.Errorf("partition: Overlap must be >= 0, got %g", c.Overlap)
	}
	if c.Overlap > 10 {
		return fmt.Errorf("partition: Overlap %g deg is unreasonably large", c.Overlap)
	}
	return nil
}

// StripeHeight returns the declination height of one stripe in degrees.
func (c Config) StripeHeight() float64 { return 180.0 / float64(c.NumStripes) }

// SubStripeHeight returns the declination height of one sub-stripe.
func (c Config) SubStripeHeight() float64 {
	return c.StripeHeight() / float64(c.NumSubStripesPerStripe)
}

// Chunker assigns chunk and subchunk IDs and enumerates partitions.
// It is immutable after construction and safe for concurrent use.
type Chunker struct {
	cfg Config
	// numChunksPerStripe[s] is the number of chunks in stripe s.
	numChunksPerStripe []int
	// numSubChunksPerChunk[s] is the number of subchunks along RA within
	// one chunk of stripe s (per sub-stripe row).
	numSubChunksPerChunk []int
}

// NewChunker builds a Chunker for the configuration.
func NewChunker(cfg Config) (*Chunker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ch := &Chunker{
		cfg:                  cfg,
		numChunksPerStripe:   make([]int, cfg.NumStripes),
		numSubChunksPerChunk: make([]int, cfg.NumStripes),
	}
	h := cfg.StripeHeight()
	for s := 0; s < cfg.NumStripes; s++ {
		// Declination of the stripe edge closest to the equator decides
		// the RA compression factor, so chunks are at least as wide as
		// they would be at the equator.
		declMin := -90 + float64(s)*h
		declMax := declMin + h
		cosMax := minAbsCos(declMin, declMax)
		// Number of chunks so that chunk RA width * cos(decl) ~ stripe
		// height: roughly square, roughly equal-area chunks.
		n := int(math.Floor(2 * math.Pi * cosMax / sphgeom.RadOf(h)))
		if n < 1 {
			n = 1
		}
		ch.numChunksPerStripe[s] = n
		// Subchunks along RA inside one chunk, so subchunks are roughly
		// square relative to the sub-stripe height.
		chunkWidth := 360.0 / float64(n)
		subH := cfg.SubStripeHeight()
		m := int(math.Floor(chunkWidth * cosMax / subH))
		if m < 1 {
			m = 1
		}
		ch.numSubChunksPerChunk[s] = m
	}
	return ch, nil
}

// minAbsCos returns cos at the declination of smallest |decl| in the band,
// i.e. the widest point of the stripe.
func minAbsCos(declMin, declMax float64) float64 {
	if declMin <= 0 && declMax >= 0 {
		return 1
	}
	a := math.Min(math.Abs(declMin), math.Abs(declMax))
	return math.Cos(sphgeom.RadOf(a))
}

// Config returns the chunker's configuration.
func (ch *Chunker) Config() Config { return ch.cfg }

// NumStripes returns the number of declination stripes.
func (ch *Chunker) NumStripes() int { return ch.cfg.NumStripes }

// ChunksInStripe returns the number of chunks in the given stripe.
func (ch *Chunker) ChunksInStripe(stripe int) int {
	return ch.numChunksPerStripe[stripe]
}

// TotalChunks returns the number of chunks covering the whole sphere.
func (ch *Chunker) TotalChunks() int {
	total := 0
	for _, n := range ch.numChunksPerStripe {
		total += n
	}
	return total
}

// SubChunksPerChunk returns how many subchunks one chunk of the given
// stripe contains (sub-stripe rows x subchunks per row).
func (ch *Chunker) SubChunksPerChunk(stripe int) int {
	return ch.cfg.NumSubStripesPerStripe * ch.numSubChunksPerChunk[stripe]
}

// stripeOf returns the stripe index of a declination.
func (ch *Chunker) stripeOf(decl float64) int {
	s := int(math.Floor((decl + 90) / ch.cfg.StripeHeight()))
	if s < 0 {
		s = 0
	}
	if s >= ch.cfg.NumStripes {
		s = ch.cfg.NumStripes - 1
	}
	return s
}

// chunkIDFor composes the external chunkId from (stripe, chunk-in-stripe).
// IDs are dense per stripe: stripe s starts at offset(s).
func (ch *Chunker) chunkIDFor(stripe, chunkInStripe int) ChunkID {
	return ChunkID(ch.stripeOffset(stripe) + chunkInStripe)
}

func (ch *Chunker) stripeOffset(stripe int) int {
	off := 0
	for s := 0; s < stripe; s++ {
		off += ch.numChunksPerStripe[s]
	}
	return off
}

// ChunkID identifies a first-level partition (the CC in Object_CC).
type ChunkID int

// SubChunkID identifies a second-level partition within a chunk
// (the SS in Object_CC_SS).
type SubChunkID int

// Locate returns the chunk and subchunk containing a point.
func (ch *Chunker) Locate(p sphgeom.Point) (ChunkID, SubChunkID) {
	stripe := ch.stripeOf(p.Decl)
	nChunks := ch.numChunksPerStripe[stripe]
	c := int(math.Floor(sphgeom.WrapRA(p.RA) / 360.0 * float64(nChunks)))
	if c >= nChunks {
		c = nChunks - 1
	}
	chunkID := ch.chunkIDFor(stripe, c)

	// Sub-stripe row within the stripe.
	h := ch.cfg.StripeHeight()
	subH := ch.cfg.SubStripeHeight()
	declInStripe := p.Decl - (-90 + float64(stripe)*h)
	row := int(math.Floor(declInStripe / subH))
	if row < 0 {
		row = 0
	}
	if row >= ch.cfg.NumSubStripesPerStripe {
		row = ch.cfg.NumSubStripesPerStripe - 1
	}
	// Subchunk column within the chunk.
	m := ch.numSubChunksPerChunk[stripe]
	chunkWidth := 360.0 / float64(nChunks)
	raInChunk := sphgeom.WrapRA(p.RA) - float64(c)*chunkWidth
	col := int(math.Floor(raInChunk / chunkWidth * float64(m)))
	if col < 0 {
		col = 0
	}
	if col >= m {
		col = m - 1
	}
	return chunkID, SubChunkID(row*m + col)
}

// decompose splits a ChunkID back into (stripe, chunk-in-stripe).
func (ch *Chunker) decompose(id ChunkID) (stripe, chunkInStripe int, err error) {
	n := int(id)
	if n < 0 {
		return 0, 0, fmt.Errorf("partition: negative chunk id %d", id)
	}
	for s := 0; s < ch.cfg.NumStripes; s++ {
		if n < ch.numChunksPerStripe[s] {
			return s, n, nil
		}
		n -= ch.numChunksPerStripe[s]
	}
	return 0, 0, fmt.Errorf("partition: chunk id %d out of range (%d chunks)", id, ch.TotalChunks())
}

// ChunkBounds returns the RA/decl box of a chunk.
func (ch *Chunker) ChunkBounds(id ChunkID) (sphgeom.Box, error) {
	stripe, c, err := ch.decompose(id)
	if err != nil {
		return sphgeom.Box{}, err
	}
	h := ch.cfg.StripeHeight()
	declMin := -90 + float64(stripe)*h
	declMax := declMin + h
	if stripe == ch.cfg.NumStripes-1 {
		declMax = 90 // snap: avoid float rounding below the pole
	}
	width := 360.0 / float64(ch.numChunksPerStripe[stripe])
	raMin := float64(c) * width
	return sphgeom.NewBox(raMin, raMin+width, declMin, declMax), nil
}

// SubChunkBounds returns the RA/decl box of a subchunk within a chunk.
func (ch *Chunker) SubChunkBounds(id ChunkID, sub SubChunkID) (sphgeom.Box, error) {
	stripe, c, err := ch.decompose(id)
	if err != nil {
		return sphgeom.Box{}, err
	}
	m := ch.numSubChunksPerChunk[stripe]
	if int(sub) < 0 || int(sub) >= ch.SubChunksPerChunk(stripe) {
		return sphgeom.Box{}, fmt.Errorf("partition: subchunk id %d out of range for chunk %d", sub, id)
	}
	row := int(sub) / m
	col := int(sub) % m
	h := ch.cfg.StripeHeight()
	subH := ch.cfg.SubStripeHeight()
	declMin := -90 + float64(stripe)*h + float64(row)*subH
	declMax := declMin + subH
	if stripe == ch.cfg.NumStripes-1 && row == ch.cfg.NumSubStripesPerStripe-1 {
		declMax = 90 // snap: avoid float rounding below the pole
	}
	width := 360.0 / float64(ch.numChunksPerStripe[stripe])
	subW := width / float64(m)
	raMin := float64(c)*width + float64(col)*subW
	return sphgeom.NewBox(raMin, raMin+subW, declMin, declMax), nil
}

// AllChunks returns every chunk ID on the sphere, in increasing order.
func (ch *Chunker) AllChunks() []ChunkID {
	ids := make([]ChunkID, 0, ch.TotalChunks())
	for i := 0; i < ch.TotalChunks(); i++ {
		ids = append(ids, ChunkID(i))
	}
	return ids
}

// ChunksIn returns the IDs of all chunks whose bounds intersect the
// region's bounding box. It never returns an empty slice for a valid
// region; a full-sky region returns every chunk. This is the coarse
// spatial index used to restrict query dispatch (paper section 5.5).
func (ch *Chunker) ChunksIn(r sphgeom.Region) []ChunkID {
	bound := r.Bound()
	var ids []ChunkID
	h := ch.cfg.StripeHeight()
	sMin := ch.stripeOf(bound.DeclMin)
	sMax := ch.stripeOf(bound.DeclMax)
	for s := sMin; s <= sMax; s++ {
		n := ch.numChunksPerStripe[s]
		width := 360.0 / float64(n)
		declMin := -90 + float64(s)*h
		stripeBox := sphgeom.Box{RAMin: 0, RAMax: 360, DeclMin: declMin, DeclMax: declMin + h}
		if !stripeBox.Intersects(bound) {
			continue
		}
		for c := 0; c < n; c++ {
			raMin := float64(c) * width
			cb := sphgeom.NewBox(raMin, raMin+width, declMin, declMin+h)
			if cb.Intersects(bound) {
				ids = append(ids, ch.chunkIDFor(s, c))
			}
		}
	}
	return ids
}

// SubChunksIn returns the subchunks of the given chunk whose bounds
// intersect the region's bounding box.
func (ch *Chunker) SubChunksIn(id ChunkID, r sphgeom.Region) ([]SubChunkID, error) {
	stripe, _, err := ch.decompose(id)
	if err != nil {
		return nil, err
	}
	bound := r.Bound()
	var subs []SubChunkID
	for i := 0; i < ch.SubChunksPerChunk(stripe); i++ {
		sb, err := ch.SubChunkBounds(id, SubChunkID(i))
		if err != nil {
			return nil, err
		}
		if sb.Intersects(bound) {
			subs = append(subs, SubChunkID(i))
		}
	}
	return subs, nil
}

// AllSubChunks returns every subchunk ID of a chunk.
func (ch *Chunker) AllSubChunks(id ChunkID) ([]SubChunkID, error) {
	stripe, _, err := ch.decompose(id)
	if err != nil {
		return nil, err
	}
	subs := make([]SubChunkID, ch.SubChunksPerChunk(stripe))
	for i := range subs {
		subs[i] = SubChunkID(i)
	}
	return subs, nil
}

// OverlapChunks returns every chunk (other than the one containing p)
// whose overlap region contains p — the chunks that must store a copy
// of p's row in their overlap companion tables (section 4.4).
//
// Candidates are preselected with a probe box derived from the chunker
// geometry, then confirmed with InOverlap. The probe must contain the
// bounds of every chunk C with p ∈ Dilated(C.bounds, margin):
//
//   - Declination: Dilated grows a chunk's band by exactly margin, so
//     C.declMin-margin <= p.Decl <= C.declMax+margin — C's band
//     intersects [p.Decl-margin, p.Decl+margin].
//   - Right ascension: Dilated widens the RA margin to
//     margin/cos(maxAbsDecl) at the extreme declination of the dilated
//     band. By the declination constraint C's stripe lies within
//     stripeHeight+margin of p.Decl, so that extreme declination is at
//     most |p.Decl| + 2*margin + stripeHeight, bounding the RA margin
//     of any qualifying chunk by margin/cos(that). When that bound
//     reaches the pole a qualifying chunk's dilation can be
//     full-circle in RA, so the probe must be too.
//
// The previous implementation probed a fixed ±3*margin box, which both
// over-scanned in declination and — because it ignored the 1/cos(decl)
// widening — missed qualifying chunks at high declination (a point up
// to margin/cos(decl) away in RA is still inside a neighbor's dilated
// bounds, and 1/cos exceeds 3 beyond ~70.5°).
func (ch *Chunker) OverlapChunks(p sphgeom.Point) []ChunkID {
	margin := ch.cfg.Overlap
	if margin <= 0 {
		return nil
	}
	limit := math.Abs(p.Decl) + 2*margin + ch.cfg.StripeHeight()
	fullCircle := limit >= 90
	var raMargin float64
	if !fullCircle {
		raMargin = margin / math.Cos(sphgeom.RadOf(limit))
	}
	own, _ := ch.Locate(p)
	// Candidate stripes are the ones whose band intersects the
	// declination probe; candidate chunks within a stripe are computed
	// arithmetically from the RA probe (chunk widths are uniform per
	// stripe), so the per-row cost is O(candidates), not O(chunks).
	sLo := ch.stripeOf(p.Decl - margin)
	sHi := ch.stripeOf(p.Decl + margin)
	var out []ChunkID
	for s := sLo; s <= sHi; s++ {
		n := ch.numChunksPerStripe[s]
		width := 360.0 / float64(n)
		ra := sphgeom.WrapRA(p.RA)
		kLo, kHi := 0, n-1
		if !fullCircle && 2*raMargin < 360-width {
			kLo = int(math.Floor((ra - raMargin) / width))
			kHi = int(math.Floor((ra + raMargin) / width))
		}
		for k := kLo; k <= kHi; k++ {
			c := ((k % n) + n) % n
			id := ch.chunkIDFor(s, c)
			if id == own {
				continue
			}
			if in, _ := ch.InOverlap(id, p); in {
				out = append(out, id)
			}
		}
	}
	return out
}

// InOverlap reports whether a point belongs to the overlap region of the
// given chunk: outside the chunk proper but within the configured overlap
// margin of its border. Rows in the overlap are stored with the chunk so
// near-neighbor joins need no cross-node data exchange (section 4.4).
func (ch *Chunker) InOverlap(id ChunkID, p sphgeom.Point) (bool, error) {
	bounds, err := ch.ChunkBounds(id)
	if err != nil {
		return false, err
	}
	if bounds.Contains(p) {
		return false, nil
	}
	return bounds.Dilated(ch.cfg.Overlap).Contains(p), nil
}

// InSubChunkOverlap reports whether a point is in the overlap region of a
// subchunk (outside it, within the margin). Used to build the on-the-fly
// "full overlap" subchunk tables for spatial self-joins.
func (ch *Chunker) InSubChunkOverlap(id ChunkID, sub SubChunkID, p sphgeom.Point) (bool, error) {
	bounds, err := ch.SubChunkBounds(id, sub)
	if err != nil {
		return false, err
	}
	if bounds.Contains(p) {
		return false, nil
	}
	return bounds.Dilated(ch.cfg.Overlap).Contains(p), nil
}
