// Package htm implements the Hierarchical Triangular Mesh of Szalay et
// al., the alternate partitioning and spatial indexing scheme the paper
// discusses in section 7.5 as a fix for the severe polar distortion of
// rectangular RA/decl chunking.
//
// The sphere is seeded with 8 spherical triangles (trixels): four in the
// southern hemisphere (S0..S3, ids 8..11) and four in the northern
// (N0..N3, ids 12..15). Each trixel subdivides into 4 children by joining
// the midpoints of its edges; a child of trixel t has id t*4+k, k=0..3.
// A trixel id at level L therefore occupies 2*L+4 bits, and ids encode
// the full ancestry: the parent of id is id>>2.
package htm

import (
	"fmt"
	"math"

	"repro/internal/sphgeom"
)

// MaxLevel is the deepest subdivision supported. Level 20 trixels are
// ~0.3 arcsecond across, far below any catalog partitioning need.
const MaxLevel = 20

// ID is a trixel identifier. The root trixels are 8..15; level-L ids lie
// in [8<<(2L), 16<<(2L)).
type ID uint64

// Level returns the subdivision level encoded by the id (0 for roots).
func (id ID) Level() (int, error) {
	if id < 8 {
		return 0, fmt.Errorf("htm: invalid id %d", id)
	}
	bits := 64 - leadingZeros(uint64(id))
	if bits%2 != 0 {
		return 0, fmt.Errorf("htm: invalid id %d (odd bit length)", id)
	}
	lvl := (bits - 4) / 2
	if lvl > MaxLevel {
		return 0, fmt.Errorf("htm: id %d deeper than MaxLevel", id)
	}
	return lvl, nil
}

func leadingZeros(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// Parent returns the id of the trixel's parent.
func (id ID) Parent() (ID, error) {
	lvl, err := id.Level()
	if err != nil {
		return 0, err
	}
	if lvl == 0 {
		return 0, fmt.Errorf("htm: root trixel %d has no parent", id)
	}
	return id >> 2, nil
}

// AncestorAt returns the id's ancestor at the given (shallower) level.
func (id ID) AncestorAt(level int) (ID, error) {
	lvl, err := id.Level()
	if err != nil {
		return 0, err
	}
	if level < 0 || level > lvl {
		return 0, fmt.Errorf("htm: level %d not an ancestor level of %d (level %d)", level, id, lvl)
	}
	return id >> uint(2*(lvl-level)), nil
}

// trixel is a spherical triangle with counterclockwise vertices.
type trixel struct {
	id         ID
	v0, v1, v2 sphgeom.Vector3
}

var rootTrixels = makeRoots()

func makeRoots() []trixel {
	v := []sphgeom.Vector3{
		{X: 0, Y: 0, Z: 1},  // v0: north pole
		{X: 1, Y: 0, Z: 0},  // v1
		{X: 0, Y: 1, Z: 0},  // v2
		{X: -1, Y: 0, Z: 0}, // v3
		{X: 0, Y: -1, Z: 0}, // v4
		{X: 0, Y: 0, Z: -1}, // v5: south pole
	}
	return []trixel{
		{id: 8, v0: v[1], v1: v[5], v2: v[2]},  // S0
		{id: 9, v0: v[2], v1: v[5], v2: v[3]},  // S1
		{id: 10, v0: v[3], v1: v[5], v2: v[4]}, // S2
		{id: 11, v0: v[4], v1: v[5], v2: v[1]}, // S3
		{id: 12, v0: v[1], v1: v[0], v2: v[4]}, // N0
		{id: 13, v0: v[4], v1: v[0], v2: v[3]}, // N1
		{id: 14, v0: v[3], v1: v[0], v2: v[2]}, // N2
		{id: 15, v0: v[2], v1: v[0], v2: v[1]}, // N3
	}
}

// contains reports whether unit vector p is inside the trixel.
// A point is inside when it is on the non-negative side of each edge
// plane (edges ordered counterclockwise seen from outside the sphere).
func (t trixel) contains(p sphgeom.Vector3) bool {
	const eps = -1e-12 // admit boundary points despite rounding
	if t.v0.Cross(t.v1).Dot(p) < eps {
		return false
	}
	if t.v1.Cross(t.v2).Dot(p) < eps {
		return false
	}
	return t.v2.Cross(t.v0).Dot(p) >= eps
}

func midpoint(a, b sphgeom.Vector3) sphgeom.Vector3 {
	m := sphgeom.Vector3{X: a.X + b.X, Y: a.Y + b.Y, Z: a.Z + b.Z}
	n := m.Norm()
	return sphgeom.Vector3{X: m.X / n, Y: m.Y / n, Z: m.Z / n}
}

// children returns the four child trixels in id order.
func (t trixel) children() [4]trixel {
	w0 := midpoint(t.v1, t.v2)
	w1 := midpoint(t.v0, t.v2)
	w2 := midpoint(t.v0, t.v1)
	return [4]trixel{
		{id: t.id*4 + 0, v0: t.v0, v1: w2, v2: w1},
		{id: t.id*4 + 1, v0: t.v1, v1: w0, v2: w2},
		{id: t.id*4 + 2, v0: t.v2, v1: w1, v2: w0},
		{id: t.id*4 + 3, v0: w0, v1: w1, v2: w2},
	}
}

// IDOf returns the trixel containing the point at the given level.
func IDOf(p sphgeom.Point, level int) (ID, error) {
	if level < 0 || level > MaxLevel {
		return 0, fmt.Errorf("htm: level %d out of range [0, %d]", level, MaxLevel)
	}
	v := p.Vector()
	var cur trixel
	found := false
	for _, t := range rootTrixels {
		if t.contains(v) {
			cur = t
			found = true
			break
		}
	}
	if !found {
		// Numerically impossible, but fail loudly rather than misindex.
		return 0, fmt.Errorf("htm: no root trixel contains %v", p)
	}
	for l := 0; l < level; l++ {
		kids := cur.children()
		found = false
		for _, k := range kids {
			if k.contains(v) {
				cur = k
				found = true
				break
			}
		}
		if !found {
			// Boundary rounding: pick the child whose center is nearest.
			best, bestDot := kids[0], math.Inf(-1)
			for _, k := range kids {
				c := center(k)
				if d := c.Dot(v); d > bestDot {
					best, bestDot = k, d
				}
			}
			cur = best
		}
	}
	return cur.id, nil
}

func center(t trixel) sphgeom.Vector3 {
	c := sphgeom.Vector3{
		X: t.v0.X + t.v1.X + t.v2.X,
		Y: t.v0.Y + t.v1.Y + t.v2.Y,
		Z: t.v0.Z + t.v1.Z + t.v2.Z,
	}
	n := c.Norm()
	return sphgeom.Vector3{X: c.X / n, Y: c.Y / n, Z: c.Z / n}
}

// Vertices returns the trixel's corner points.
func Vertices(id ID) ([3]sphgeom.Point, error) {
	t, err := resolve(id)
	if err != nil {
		return [3]sphgeom.Point{}, err
	}
	return [3]sphgeom.Point{
		sphgeom.PointFromVector(t.v0),
		sphgeom.PointFromVector(t.v1),
		sphgeom.PointFromVector(t.v2),
	}, nil
}

// resolve walks from the root to materialize a trixel from its id.
func resolve(id ID) (trixel, error) {
	lvl, err := id.Level()
	if err != nil {
		return trixel{}, err
	}
	rootID := id >> uint(2*lvl)
	var cur trixel
	found := false
	for _, t := range rootTrixels {
		if t.id == rootID {
			cur = t
			found = true
			break
		}
	}
	if !found {
		return trixel{}, fmt.Errorf("htm: bad root in id %d", id)
	}
	for l := lvl - 1; l >= 0; l-- {
		k := (id >> uint(2*l)) & 3
		cur = cur.children()[k]
	}
	return cur, nil
}

// Area returns the solid angle of a trixel in square degrees.
func Area(id ID) (float64, error) {
	t, err := resolve(id)
	if err != nil {
		return 0, err
	}
	return solidAngle(t.v0, t.v1, t.v2), nil
}

// solidAngle computes the spherical triangle's solid angle (Van Oosterom
// & Strackee), converted to square degrees.
func solidAngle(a, b, c sphgeom.Vector3) float64 {
	num := a.Dot(b.Cross(c))
	den := 1 + a.Dot(b) + b.Dot(c) + c.Dot(a)
	omega := 2 * math.Abs(math.Atan2(num, den))
	const degPerRad = 180 / math.Pi
	return omega * degPerRad * degPerRad
}

// bound returns a conservative RA/decl bounding box for the trixel.
func (t trixel) bound() sphgeom.Box {
	pts := []sphgeom.Point{
		sphgeom.PointFromVector(t.v0),
		sphgeom.PointFromVector(t.v1),
		sphgeom.PointFromVector(t.v2),
	}
	declMin, declMax := 91.0, -91.0
	for _, p := range pts {
		declMin = math.Min(declMin, p.Decl)
		declMax = math.Max(declMax, p.Decl)
	}
	// If the trixel contains a pole, it spans all RA.
	north := sphgeom.Vector3{X: 0, Y: 0, Z: 1}
	south := sphgeom.Vector3{X: 0, Y: 0, Z: -1}
	if t.contains(north) {
		declMax = 90
		return sphgeom.Box{RAMin: 0, RAMax: 360, DeclMin: declMin, DeclMax: declMax}
	}
	if t.contains(south) {
		declMin = -90
		return sphgeom.Box{RAMin: 0, RAMax: 360, DeclMin: declMin, DeclMax: declMax}
	}
	// Edges are great-circle arcs and can bulge past vertex declinations
	// by at most the edge's chord height; a trixel at level L has edges
	// <= 90/2^L degrees, so dilating by half the edge length is safe.
	lvl, _ := t.id.Level()
	edge := 90.0 / math.Pow(2, float64(lvl))
	raMin, raMax, wraps := raHull(pts)
	box := sphgeom.Box{RAMin: raMin, RAMax: raMax, DeclMin: declMin, DeclMax: declMax}
	if wraps {
		box = sphgeom.Box{RAMin: raMin, RAMax: raMax, DeclMin: declMin, DeclMax: declMax}
	}
	return box.Dilated(edge / 2)
}

// raHull returns the smallest RA interval containing all points,
// accounting for wraparound; wraps reports RAMin > RAMax.
func raHull(pts []sphgeom.Point) (raMin, raMax float64, wraps bool) {
	// Try all rotations of sorted RAs; pick the arrangement whose span
	// is smallest.
	ras := make([]float64, len(pts))
	for i, p := range pts {
		ras[i] = p.RA
	}
	sortFloats(ras)
	bestSpan := 361.0
	bestStart := 0
	n := len(ras)
	for i := 0; i < n; i++ {
		// Interval starting at ras[i], covering all others going east.
		span := 0.0
		for j := 0; j < n; j++ {
			d := ras[(i+j)%n] - ras[i]
			if d < 0 {
				d += 360
			}
			if d > span {
				span = d
			}
		}
		if span < bestSpan {
			bestSpan = span
			bestStart = i
		}
	}
	raMin = ras[bestStart]
	raMax = raMin + bestSpan
	if raMax >= 360 {
		raMax -= 360
		return raMin, raMax, true
	}
	return raMin, raMax, false
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// Cover returns a complete set of level-`level` trixel ids whose union
// contains the region: any point of the region is in some returned
// trixel. The cover is conservative (it may include trixels that only
// graze the region's bounding box).
func Cover(r sphgeom.Region, level int) ([]ID, error) {
	if level < 0 || level > MaxLevel {
		return nil, fmt.Errorf("htm: level %d out of range [0, %d]", level, MaxLevel)
	}
	bound := r.Bound()
	var out []ID
	var walk func(t trixel, lvl int)
	walk = func(t trixel, lvl int) {
		if !t.bound().Intersects(bound) {
			return
		}
		if lvl == level {
			out = append(out, t.id)
			return
		}
		for _, k := range t.children() {
			walk(k, lvl+1)
		}
	}
	for _, t := range rootTrixels {
		walk(t, 0)
	}
	return out, nil
}

// NumTrixels returns the number of trixels at a level (8 * 4^level).
func NumTrixels(level int) int {
	return 8 << uint(2*level)
}
