package htm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sphgeom"
)

func TestLevelEncoding(t *testing.T) {
	cases := []struct {
		id   ID
		want int
	}{
		{8, 0}, {15, 0}, {32, 1}, {63, 1}, {128, 2}, {255, 2},
	}
	for _, c := range cases {
		got, err := c.id.Level()
		if err != nil || got != c.want {
			t.Errorf("Level(%d) = %d, %v; want %d", c.id, got, err, c.want)
		}
	}
	for _, bad := range []ID{0, 1, 7, 16, 31} {
		if _, err := bad.Level(); err == nil {
			t.Errorf("Level(%d) should fail", bad)
		}
	}
}

func TestParentChild(t *testing.T) {
	id, err := IDOf(sphgeom.NewPoint(45, 45), 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := id.Parent()
	if err != nil {
		t.Fatal(err)
	}
	if p != id>>2 {
		t.Errorf("parent = %d, want %d", p, id>>2)
	}
	anc, err := id.AncestorAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if anc < 8 || anc > 15 {
		t.Errorf("level-0 ancestor = %d, want a root", anc)
	}
	if _, err := ID(8).Parent(); err == nil {
		t.Error("root parent should fail")
	}
}

func TestIDOfLevelsNest(t *testing.T) {
	// The id at level L must be the ancestor of the id at level L+1.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		p := sphgeom.NewPoint(rng.Float64()*360, rng.Float64()*180-90)
		prev := ID(0)
		for lvl := 0; lvl <= 8; lvl++ {
			id, err := IDOf(p, lvl)
			if err != nil {
				t.Fatal(err)
			}
			if lvl > 0 {
				par, err := id.Parent()
				if err != nil {
					t.Fatal(err)
				}
				if par != prev {
					t.Fatalf("point %v: level %d id %d has parent %d, expected %d", p, lvl, id, par, prev)
				}
			}
			prev = id
		}
	}
}

func TestIDRangePerLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for lvl := 0; lvl <= 6; lvl++ {
		lo := ID(8) << uint(2*lvl)
		hi := ID(16) << uint(2*lvl)
		for i := 0; i < 50; i++ {
			p := sphgeom.NewPoint(rng.Float64()*360, rng.Float64()*180-90)
			id, err := IDOf(p, lvl)
			if err != nil {
				t.Fatal(err)
			}
			if id < lo || id >= hi {
				t.Fatalf("level %d id %d outside [%d, %d)", lvl, id, lo, hi)
			}
		}
	}
}

func TestResolveContainsPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		p := sphgeom.NewPoint(rng.Float64()*360, rng.Float64()*180-90)
		id, err := IDOf(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		tri, err := resolve(id)
		if err != nil {
			t.Fatal(err)
		}
		if !tri.contains(p.Vector()) {
			t.Fatalf("resolved trixel %d does not contain its point %v", id, p)
		}
	}
}

func TestAreasSumToSphere(t *testing.T) {
	const sphere = 4 * math.Pi * (180 / math.Pi) * (180 / math.Pi)
	for lvl := 0; lvl <= 3; lvl++ {
		total := 0.0
		lo := ID(8) << uint(2*lvl)
		hi := ID(16) << uint(2*lvl)
		for id := lo; id < hi; id++ {
			a, err := Area(id)
			if err != nil {
				t.Fatal(err)
			}
			total += a
		}
		if math.Abs(total-sphere)/sphere > 1e-9 {
			t.Errorf("level %d areas sum to %g, want %g", lvl, total, sphere)
		}
	}
}

func TestAreaVariationBeatsBoxes(t *testing.T) {
	// Section 7.5's motivation: HTM trixel areas vary far less than
	// rectangular RA/decl chunk areas, which collapse near the poles.
	lvl := 4
	minA, maxA := math.Inf(1), math.Inf(-1)
	lo := ID(8) << uint(2*lvl)
	hi := ID(16) << uint(2*lvl)
	for id := lo; id < hi; id++ {
		a, err := Area(id)
		if err != nil {
			t.Fatal(err)
		}
		minA = math.Min(minA, a)
		maxA = math.Max(maxA, a)
	}
	ratio := maxA / minA
	if ratio > 3 {
		t.Errorf("trixel area ratio %g too large; HTM should be within ~2x", ratio)
	}
}

func TestCoverContainsRegionPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		ra := rng.Float64() * 360
		decl := rng.Float64()*140 - 70
		box := sphgeom.NewBox(ra, ra+2+rng.Float64()*5, decl, decl+2+rng.Float64()*5)
		lvl := 4
		ids, err := Cover(box, lvl)
		if err != nil {
			t.Fatal(err)
		}
		inCover := make(map[ID]bool, len(ids))
		for _, id := range ids {
			inCover[id] = true
		}
		for k := 0; k < 20; k++ {
			p := sphgeom.NewPoint(
				box.RAMin+rng.Float64()*box.RAExtent(),
				box.DeclMin+rng.Float64()*(box.DeclMax-box.DeclMin),
			)
			if !box.Contains(p) {
				continue
			}
			id, err := IDOf(p, lvl)
			if err != nil {
				t.Fatal(err)
			}
			if !inCover[id] {
				t.Fatalf("cover of %v (%d trixels) missing trixel %d of point %v", box, len(ids), id, p)
			}
		}
	}
}

func TestCoverPolarRegion(t *testing.T) {
	box := sphgeom.NewBox(0, 360, 85, 90)
	ids, err := Cover(box, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("polar cover empty")
	}
	p := sphgeom.NewPoint(123, 89)
	id, _ := IDOf(p, 3)
	found := false
	for _, x := range ids {
		if x == id {
			found = true
		}
	}
	if !found {
		t.Error("polar cover missing trixel containing (123, 89)")
	}
}

func TestCoverSmallRegionIsSmall(t *testing.T) {
	// Interactive queries with tiny extents must map to few trixels
	// (the section 7.5 argument for HTM indexing).
	box := sphgeom.NewBox(10, 10.1, 10, 10.1)
	ids, err := Cover(box, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("empty cover")
	}
	if len(ids) > 64 {
		t.Errorf("0.1-degree box covered by %d level-8 trixels; expected a small set", len(ids))
	}
}

func TestNumTrixels(t *testing.T) {
	if NumTrixels(0) != 8 || NumTrixels(1) != 32 || NumTrixels(3) != 512 {
		t.Error("NumTrixels wrong")
	}
}

func TestVertices(t *testing.T) {
	vs, err := Vertices(8)
	if err != nil {
		t.Fatal(err)
	}
	// S0 root has vertices at (ra 0, decl 0), south pole, (ra 90, decl 0).
	if math.Abs(vs[0].Decl) > 1e-9 || math.Abs(vs[1].Decl+90) > 1e-9 {
		t.Errorf("unexpected S0 vertices: %v", vs)
	}
}

func BenchmarkIDOfLevel10(b *testing.B) {
	p := sphgeom.NewPoint(211.7, -12.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IDOf(p, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverLevel6(b *testing.B) {
	box := sphgeom.NewBox(0, 10, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cover(box, 6); err != nil {
			b.Fatal(err)
		}
	}
}
