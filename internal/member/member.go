// Package member is the cluster availability subsystem: membership,
// health, and self-healing replication.
//
// The paper (section 5.1.2) leans on xrootd for fault tolerance — a
// dead worker's chunks are answered by replicas — but replica failover
// alone only masks a failure: every query still probes the dead worker,
// and the replication factor stays degraded until an operator
// intervenes. This package closes that loop with three cooperating
// pieces:
//
//   - a Detector: a czar-side failure detector that polls every worker
//     concurrently over the fabric's lightweight /ping transaction and
//     maintains per-worker state (alive / suspect / dead, driven by
//     consecutive-miss thresholds). Dispatch consults it so replica
//     ordering skips known-dead workers instead of burning a timeout
//     per chunk. Dead workers keep being probed — the quarantine
//     expires at the first successful ping, so a recovered worker is
//     routed to again without operator action.
//
//   - a Repairer: a replication manager that audits placement against
//     health and, when a worker dies (or is drained for removal),
//     copies each under-replicated chunk's tables — chunk table,
//     overlap companion, director-key index rebuilt on arrival — from
//     a surviving replica to a live target over the fabric's /repl
//     transaction, verifies the copy by reading it back, and only then
//     re-homes the chunk in meta.Placement (bumping the placement
//     epoch) and moves the fabric export. Queries keep answering
//     correctly mid-repair: a target starts serving a chunk only after
//     its copy is verified.
//
//   - a Manager bundling the two: the single handle the cluster wires
//     into the czar (health-aware dispatch, SHOW WORKERS) and the
//     public Cluster.AddWorker / RemoveWorker / Status API.
package member

import (
	"context"
	"fmt"

	"repro/internal/meta"
	"repro/internal/telemetry"
	"repro/internal/xrd"
)

// Config assembles a Manager.
type Config struct {
	// Detector configures the failure detector.
	Detector DetectorConfig
	// Repair configures the replication manager.
	Repair RepairConfig
	// SelfHeal enables the replication manager; without it the Manager
	// only detects (dispatch still skips dead workers, but a lost
	// worker permanently drops the replication factor).
	SelfHeal bool
}

// Status is a point-in-time snapshot of cluster availability.
type Status struct {
	// Epoch is the placement epoch: a counter bumped by every placement
	// mutation (ingest assignment, repair re-home, drain). Two Status
	// snapshots with equal epochs saw identical chunk→worker maps.
	Epoch int64
	// Workers lists per-worker health, sorted by name.
	Workers []WorkerStatus
	// Repair is the replication manager's cumulative progress.
	Repair RepairProgress
}

// Manager bundles the failure detector and the replication manager
// behind one handle. The czar consults Dead for dispatch ordering and
// Status for SHOW WORKERS; the cluster drives Watch/Unwatch/Drain from
// its membership API.
type Manager struct {
	det       *Detector
	rep       *Repairer
	placement *meta.Placement
}

// NewManager wires a detector (and, with cfg.SelfHeal, a repairer)
// over the given fabric client and placement. Call Start to begin
// probing; Close to stop.
func NewManager(cfg Config, client *xrd.Client, placement *meta.Placement) *Manager {
	det := NewDetector(cfg.Detector, FabricPinger{Client: client})
	m := &Manager{det: det, placement: placement}
	if cfg.SelfHeal {
		m.rep = NewRepairer(cfg.Repair, client, placement, det)
		// Health transitions drive repair: a death kicks an immediate
		// audit, and a recovery re-audits chunks whose repair failed for
		// want of a source or target.
		det.OnTransition(func(worker string, from, to State) {
			if to == StateDead || from == StateDead {
				m.rep.CheckNow()
			}
		})
	}
	return m
}

// Watch adds workers to the probed set (as alive).
func (m *Manager) Watch(names ...string) { m.det.Watch(names...) }

// Unwatch stops probing a worker (decommissioning).
func (m *Manager) Unwatch(name string) { m.det.Unwatch(name) }

// Start begins background probing and repair.
func (m *Manager) Start() {
	if m.rep != nil {
		m.rep.Start()
	}
	m.det.Start()
}

// Close stops probing and repair, waiting for in-flight rounds.
func (m *Manager) Close() {
	m.det.Close()
	if m.rep != nil {
		m.rep.Close()
	}
}

// Dead reports whether the failure detector currently considers the
// worker dead. Unknown workers are not dead.
func (m *Manager) Dead(name string) bool { return m.det.Dead(name) }

// State returns the detector's state for a worker.
func (m *Manager) State(name string) (State, bool) { return m.det.State(name) }

// CheckNow kicks an immediate placement-vs-health audit (no-op without
// self-healing). The cluster calls it after AddWorker so chunks whose
// repair previously failed for want of a target are retried at once.
func (m *Manager) CheckNow() {
	if m.rep != nil {
		m.rep.CheckNow()
	}
}

// Drain gracefully decommissions a worker: every chunk it holds is
// re-replicated onto other live workers (verified copies, placement
// re-homed chunk by chunk) before the caller detaches it. A worker
// holding no chunks drains trivially even without self-healing.
func (m *Manager) Drain(ctx context.Context, worker string) error {
	if m.rep == nil {
		if len(m.placement.ChunksOn(worker)) == 0 {
			return nil
		}
		return fmt.Errorf("member: cannot drain %s: self-healing is disabled and the worker still holds chunks", worker)
	}
	return m.rep.Drain(ctx, worker)
}

// RegisterMetrics exports the availability subsystem into a telemetry
// registry: a live transition counter (hooked into the detector) plus
// health/repair series sampled from Status at scrape time. Call once
// at assembly; a nil registry is a no-op.
func (m *Manager) RegisterMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	transitions := reg.Counter("qserv_member_transitions_total",
		"worker health state transitions observed by the failure detector")
	m.det.OnTransition(func(string, State, State) { transitions.Inc() })
	countState := func(s State) func() int64 {
		return func() int64 {
			var n int64
			for _, w := range m.det.Snapshot() {
				if w.State == s {
					n++
				}
			}
			return n
		}
	}
	reg.GaugeFunc("qserv_member_workers", "watched workers by health state",
		countState(StateAlive), "state", "alive")
	reg.GaugeFunc("qserv_member_workers", "watched workers by health state",
		countState(StateSuspect), "state", "suspect")
	reg.GaugeFunc("qserv_member_workers", "watched workers by health state",
		countState(StateDead), "state", "dead")
	reg.GaugeFunc("qserv_member_placement_epoch", "placement epoch (bumped by every placement mutation)",
		func() int64 { return m.placement.Epoch() })
	if m.rep != nil {
		reg.CounterFunc("qserv_member_repairs_total", "verified chunk re-homes since startup",
			func() int64 { return int64(m.rep.Progress().ChunksRepaired) })
		reg.CounterFunc("qserv_member_heals_total", "chunks copied back in place to hollow holders",
			func() int64 { return int64(m.rep.Progress().ChunksHealed) })
		reg.GaugeFunc("qserv_member_repairs_pending", "chunks currently under-replicated",
			func() int64 { return int64(m.rep.Progress().ChunksPending) })
	}
}

// Status snapshots per-worker health, chunk counts, repair progress,
// and the placement epoch.
func (m *Manager) Status() Status {
	st := Status{Epoch: m.placement.Epoch()}
	counts := m.placement.Counts()
	for _, h := range m.det.Snapshot() {
		h.Chunks = counts[h.Name]
		st.Workers = append(st.Workers, h)
	}
	if m.rep != nil {
		st.Repair = m.rep.Progress()
	}
	return st
}
