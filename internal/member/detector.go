package member

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/xrd"
)

// logger emits the availability subsystem's structured events: health
// transitions, repair actions. Quiet by default (QSERV_LOG raises it).
var logger = telemetry.NewLogger("member")

// State is a worker's health as the failure detector sees it.
type State int

const (
	// StateAlive: the last probe succeeded.
	StateAlive State = iota
	// StateSuspect: at least SuspectAfter consecutive probes missed;
	// the worker may be slow or partitioned. Dispatch still uses it.
	StateSuspect
	// StateDead: at least DeadAfter consecutive probes missed. Dispatch
	// skips it and the replication manager re-homes its chunks. Probing
	// continues — the first successful ping revives it to alive.
	StateDead
)

// String renders the state for SHOW WORKERS and logs.
func (s State) String() string {
	switch s {
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return "alive"
	}
}

// WorkerStatus is one worker's row in a Status snapshot.
type WorkerStatus struct {
	Name string
	// State is the detector's current classification.
	State State
	// Misses counts consecutive failed probes.
	Misses int
	// LastSeen is the time of the last successful probe (the watch
	// time until the first probe lands).
	LastSeen time.Time
	// LastErr is the text of the last probe failure, empty when alive.
	LastErr string
	// Chunks is the number of chunks placement assigns the worker
	// (filled by Manager.Status, not by the detector).
	Chunks int
}

// Pinger probes one worker's liveness.
type Pinger interface {
	Ping(ctx context.Context, worker string) error
}

// FabricPinger probes workers over the xrd fabric's /ping transaction
// — a read served from the worker's scheduler loop entry, deliberately
// independent of the scan lanes so a busy worker still answers.
type FabricPinger struct{ Client *xrd.Client }

// Ping implements Pinger.
func (p FabricPinger) Ping(ctx context.Context, worker string) error {
	_, err := p.Client.ReadFrom(ctx, worker, xrd.PingPath)
	return err
}

// DetectorConfig tunes the failure detector.
type DetectorConfig struct {
	// Interval is the probe period (default 200ms).
	Interval time.Duration
	// Timeout bounds one whole probe round (default 2s).
	Timeout time.Duration
	// SuspectAfter is the consecutive-miss threshold for suspect
	// (default 1).
	SuspectAfter int
	// DeadAfter is the consecutive-miss threshold for dead (default 3).
	DeadAfter int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	if c.DeadAfter < c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter
	}
	return c
}

// Detector polls the watched workers concurrently and maintains their
// alive / suspect / dead state.
type Detector struct {
	cfg  DetectorConfig
	ping Pinger

	mu      sync.Mutex
	workers map[string]*health
	subs    []func(worker string, from, to State)

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type health struct {
	state    State
	misses   int
	lastSeen time.Time
	lastErr  error
	// deadSince is when the worker entered StateDead; zero while not
	// dead. The repairer reads it to hold re-homing for a grace window
	// in which a durable worker can restart and serve its chunks again.
	deadSince time.Time
}

// NewDetector creates a detector; call Watch to add workers and Start
// to begin probing (tests may drive Probe directly instead).
func NewDetector(cfg DetectorConfig, ping Pinger) *Detector {
	return &Detector{
		cfg:     cfg.withDefaults(),
		ping:    ping,
		workers: map[string]*health{},
		stop:    make(chan struct{}),
	}
}

// Watch adds workers to the probed set as alive; already-watched names
// are untouched.
func (d *Detector) Watch(names ...string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, n := range names {
		if _, ok := d.workers[n]; !ok {
			d.workers[n] = &health{state: StateAlive, lastSeen: time.Now()}
		}
	}
}

// Unwatch stops probing a worker and forgets its state.
func (d *Detector) Unwatch(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.workers, name)
}

// OnTransition registers a callback fired (outside the detector lock,
// from the probing goroutine) whenever a worker changes state.
// Register subscribers before Start.
func (d *Detector) OnTransition(fn func(worker string, from, to State)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.subs = append(d.subs, fn)
}

// Start begins the background probe loop.
func (d *Detector) Start() {
	d.wg.Add(1)
	go d.loop()
}

// Close stops probing and waits for the in-flight round.
func (d *Detector) Close() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

func (d *Detector) loop() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			ctx, done := context.WithTimeout(context.Background(), d.cfg.Timeout)
			d.Probe(ctx)
			done()
		}
	}
}

// Probe runs one concurrent liveness round over every watched worker,
// updating states and firing transition callbacks. The loop calls it
// on each tick; tests and benchmarks may call it directly.
func (d *Detector) Probe(ctx context.Context) {
	d.mu.Lock()
	names := make([]string, 0, len(d.workers))
	for n := range d.workers {
		names = append(names, n)
	}
	subs := d.subs
	d.mu.Unlock()

	type outcome struct {
		name string
		err  error
	}
	results := make(chan outcome, len(names))
	for _, n := range names {
		go func(n string) {
			results <- outcome{name: n, err: d.ping.Ping(ctx, n)}
		}(n)
	}
	type transition struct {
		name     string
		from, to State
	}
	var fired []transition
	for range names {
		o := <-results
		d.mu.Lock()
		h := d.workers[o.name]
		if h == nil { // unwatched mid-round
			d.mu.Unlock()
			continue
		}
		from := h.state
		if o.err == nil {
			h.misses, h.lastErr = 0, nil
			h.lastSeen = time.Now()
			h.state = StateAlive
			h.deadSince = time.Time{}
		} else {
			h.misses++
			h.lastErr = o.err
			switch {
			case h.misses >= d.cfg.DeadAfter:
				if h.state != StateDead {
					h.deadSince = time.Now()
				}
				h.state = StateDead
			case h.misses >= d.cfg.SuspectAfter:
				h.state = StateSuspect
			}
		}
		to := h.state
		d.mu.Unlock()
		if to != from {
			fired = append(fired, transition{o.name, from, to})
		}
	}
	for _, tr := range fired {
		// Health transitions are the availability subsystem's headline
		// events: a worker leaving alive is always worth a log line, a
		// recovery is informational.
		if tr.to == StateAlive {
			logger.Info("worker.state", "worker", tr.name, "from", tr.from, "to", tr.to)
		} else {
			logger.Warn("worker.state", "worker", tr.name, "from", tr.from, "to", tr.to)
		}
		for _, fn := range subs {
			fn(tr.name, tr.from, tr.to)
		}
	}
}

// Dead reports whether a worker is currently considered dead; unknown
// workers are not.
func (d *Detector) Dead(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.workers[name]
	return h != nil && h.state == StateDead
}

// DeadSince returns when a dead worker entered StateDead; ok is false
// for workers that are not watched or not currently dead.
func (d *Detector) DeadSince(name string) (time.Time, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.workers[name]
	if h == nil || h.state != StateDead {
		return time.Time{}, false
	}
	return h.deadSince, true
}

// State returns a worker's current state; ok is false when the worker
// is not watched.
func (d *Detector) State(name string) (State, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.workers[name]
	if h == nil {
		return StateAlive, false
	}
	return h.state, true
}

// Snapshot returns every watched worker's status, sorted by name.
func (d *Detector) Snapshot() []WorkerStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]WorkerStatus, 0, len(d.workers))
	for n, h := range d.workers {
		ws := WorkerStatus{Name: n, State: h.state, Misses: h.misses, LastSeen: h.lastSeen}
		if h.lastErr != nil {
			ws.LastErr = h.lastErr.Error()
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
