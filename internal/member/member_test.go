package member

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/ingest"
	"repro/internal/meta"
	"repro/internal/partition"
	"repro/internal/sqlengine"
	"repro/internal/worker"
	"repro/internal/xrd"
)

// scriptPinger fails probes for the named workers.
type scriptPinger struct {
	mu   sync.Mutex
	fail map[string]bool
}

func (p *scriptPinger) setFail(name string, fail bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail == nil {
		p.fail = map[string]bool{}
	}
	p.fail[name] = fail
}

func (p *scriptPinger) Ping(_ context.Context, worker string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail[worker] {
		return fmt.Errorf("scripted failure for %s", worker)
	}
	return nil
}

func TestDetectorTransitions(t *testing.T) {
	p := &scriptPinger{}
	d := NewDetector(DetectorConfig{SuspectAfter: 1, DeadAfter: 3}, p)
	d.Watch("a", "b")

	var mu sync.Mutex
	var seen []string
	d.OnTransition(func(w string, from, to State) {
		mu.Lock()
		seen = append(seen, fmt.Sprintf("%s:%v->%v", w, from, to))
		mu.Unlock()
	})

	ctx := context.Background()
	d.Probe(ctx)
	if st, _ := d.State("a"); st != StateAlive {
		t.Fatalf("a after clean probe = %v", st)
	}

	p.setFail("a", true)
	d.Probe(ctx) // miss 1 -> suspect
	if st, _ := d.State("a"); st != StateSuspect {
		t.Fatalf("a after 1 miss = %v", st)
	}
	if d.Dead("a") {
		t.Fatal("suspect must not read as dead")
	}
	d.Probe(ctx) // miss 2 -> still suspect
	d.Probe(ctx) // miss 3 -> dead
	if !d.Dead("a") {
		t.Fatal("a should be dead after 3 misses")
	}
	if d.Dead("b") {
		t.Fatal("b never missed")
	}
	snap := d.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[0].Misses != 3 || snap[0].LastErr == "" {
		t.Fatalf("snapshot = %+v", snap)
	}

	// Quarantine expiry: the dead worker keeps being probed; the first
	// success revives it.
	p.setFail("a", false)
	d.Probe(ctx)
	if d.Dead("a") {
		t.Fatal("a should be probed back in")
	}
	if st, _ := d.State("a"); st != StateAlive {
		t.Fatalf("revived state = %v", st)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{"a:alive->suspect", "a:suspect->dead", "a:dead->alive"}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, seen[i], want[i])
		}
	}
}

func TestDetectorUnwatch(t *testing.T) {
	p := &scriptPinger{}
	d := NewDetector(DetectorConfig{DeadAfter: 1}, p)
	d.Watch("a")
	p.setFail("a", true)
	d.Probe(context.Background())
	if !d.Dead("a") {
		t.Fatal("a should be dead")
	}
	d.Unwatch("a")
	if d.Dead("a") {
		t.Fatal("unwatched workers are not dead")
	}
	if _, ok := d.State("a"); ok {
		t.Fatal("unwatched workers have no state")
	}
}

// repairHarness wires three real workers behind an in-process fabric
// with the Object table loaded on one of them for chunk 5.
type repairHarness struct {
	reg       *meta.Registry
	red       *xrd.Redirector
	client    *xrd.Client
	placement *meta.Placement
	workers   map[string]*worker.Worker
	names     []string
	chunk     partition.ChunkID
	rows      []sqlengine.Row
}

func newRepairHarness(t *testing.T) *repairHarness {
	t.Helper()
	ch, err := partition.NewChunker(partition.Config{NumStripes: 18, NumSubStripesPerStripe: 4, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	h := &repairHarness{
		reg:       datagen.LSSTRegistry(ch),
		red:       xrd.NewRedirector(),
		placement: meta.NewPlacement(),
		workers:   map[string]*worker.Worker{},
		chunk:     partition.ChunkID(5),
	}
	h.client = xrd.NewClient(h.red)
	for _, name := range []string{"w1", "w2", "w3"} {
		w, err := worker.New(worker.DefaultConfig(name), h.reg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		h.workers[name] = w
		h.names = append(h.names, name)
		h.red.Register(xrd.NewLocalEndpoint(name, w))
	}
	// Object rows for chunk 5 (the values are arbitrary; the schema
	// arity must match, chunkId/subChunkId included).
	for i := int64(1); i <= 4; i++ {
		h.rows = append(h.rows, sqlengine.Row{
			i, 30.0 + float64(i)/10, 0.1, 1e-28, 1e-28, 1e-28, 1e-28, 1e-28, 1e-28,
			2e-28, 0.05, int64(h.chunk), int64(0)})
	}
	payload, err := ingest.EncodeBatch(ingest.Batch{Rows: h.rows, Overlap: h.rows[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.workers["w1"].HandleWrite(xrd.LoadPath("Object", int(h.chunk)), payload); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *repairHarness) repairer(t *testing.T, det *Detector, rehomed *[]string) *Repairer {
	t.Helper()
	return NewRepairer(RepairConfig{
		Factor: 2,
		Tables: func() []string { return []string{"Object"} },
		Candidates: func() []string {
			return append([]string(nil), h.names...)
		},
		Rehome: func(c partition.ChunkID, from, to string) {
			*rehomed = append(*rehomed, fmt.Sprintf("%d:%s->%s", c, from, to))
		},
	}, h.client, h.placement, det)
}

func TestRepairReplacesDeadReplica(t *testing.T) {
	h := newRepairHarness(t)
	p := &scriptPinger{}
	det := NewDetector(DetectorConfig{DeadAfter: 1}, p)
	det.Watch("w1", "w2", "w3", "ghost")
	p.setFail("ghost", true)
	det.Probe(context.Background())

	// Chunk 5 is placed on w1 (live, holds the data) and ghost (dead).
	h.placement.Assign(h.chunk, "w1", "ghost")
	epoch0 := h.placement.Epoch()

	var rehomed []string
	r := h.repairer(t, det, &rehomed)
	r.Sweep()

	ws := h.placement.Workers(h.chunk)
	if len(ws) != 2 || ws[0] != "w1" {
		t.Fatalf("placement after repair = %v", ws)
	}
	target := ws[1]
	if target == "ghost" || target == "w1" {
		t.Fatalf("dead replica not replaced: %v", ws)
	}
	if h.placement.Epoch() <= epoch0 {
		t.Fatal("placement epoch did not advance")
	}
	if len(rehomed) != 1 || rehomed[0] != fmt.Sprintf("5:ghost->%s", target) {
		t.Fatalf("rehome calls = %v", rehomed)
	}

	// The target's copy must be byte-identical to the source's export
	// (rows, overlap companion, and a rebuilt director-key index).
	src, err := h.client.ReadFrom(context.Background(), "w1", xrd.ReplPath("Object", int(h.chunk)))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := h.client.ReadFrom(context.Background(), target, xrd.ReplPath("Object", int(h.chunk)))
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != string(dst) {
		t.Fatal("target export differs from source")
	}
	db, err := h.workers[target].Engine().Database(h.reg.DB)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table(meta.ChunkTableName("Object", h.chunk))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(h.rows) || !tbl.HasIndex("objectId") {
		t.Fatalf("target chunk table: %d rows, indexed=%v", len(tbl.Rows), tbl.HasIndex("objectId"))
	}

	prog := r.Progress()
	if prog.ChunksRepaired != 1 || prog.TablesCopied != 1 || prog.BytesCopied == 0 || prog.ChunksPending != 0 {
		t.Fatalf("progress = %+v", prog)
	}

	// A second sweep finds nothing to do.
	r.Sweep()
	if got := r.Progress().ChunksRepaired; got != 1 {
		t.Fatalf("idempotent sweep repaired again: %d", got)
	}
}

func TestRepairNoSurvivingReplica(t *testing.T) {
	h := newRepairHarness(t)
	p := &scriptPinger{}
	det := NewDetector(DetectorConfig{DeadAfter: 1}, p)
	det.Watch("ghost")
	p.setFail("ghost", true)
	det.Probe(context.Background())

	h.placement.Assign(partition.ChunkID(9), "ghost")
	var rehomed []string
	r := h.repairer(t, det, &rehomed)
	r.Sweep()
	prog := r.Progress()
	if prog.ChunksPending != 1 || prog.LastError == "" {
		t.Fatalf("unrepairable chunk not reported: %+v", prog)
	}
	if got := h.placement.Workers(partition.ChunkID(9)); len(got) != 1 || got[0] != "ghost" {
		t.Fatalf("placement mutated without a copy: %v", got)
	}
}

func TestDrainMovesChunksOff(t *testing.T) {
	h := newRepairHarness(t)
	det := NewDetector(DetectorConfig{DeadAfter: 1}, &scriptPinger{})
	det.Watch("w1", "w2", "w3")

	h.placement.Assign(h.chunk, "w1", "w2")
	// w2 needs the chunk too (it is a live replica a drain may copy from).
	data, err := h.client.ReadFrom(context.Background(), "w1", xrd.ReplPath("Object", int(h.chunk)))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.client.WriteTo(context.Background(), "w2", xrd.ReplPath("Object", int(h.chunk)), data); err != nil {
		t.Fatal(err)
	}

	var rehomed []string
	r := h.repairer(t, det, &rehomed)
	if err := r.Drain(context.Background(), "w1"); err != nil {
		t.Fatal(err)
	}
	ws := h.placement.Workers(h.chunk)
	if len(ws) != 2 {
		t.Fatalf("placement after drain = %v", ws)
	}
	for _, w := range ws {
		if w == "w1" {
			t.Fatalf("drained worker still placed: %v", ws)
		}
	}
	if len(h.placement.ChunksOn("w1")) != 0 {
		t.Fatal("ChunksOn(w1) not empty after drain")
	}
}
