package member

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/meta"
	"repro/internal/partition"
	"repro/internal/xrd"
)

// RepairConfig tunes the replication manager.
type RepairConfig struct {
	// Factor is the replication factor repair restores.
	Factor int
	// OpTimeout bounds each fabric transaction of a copy (default 30s).
	OpTimeout time.Duration
	// SweepInterval is the periodic placement-vs-health audit period
	// (default 5s); health transitions and CheckNow kick an immediate
	// sweep on top of it.
	SweepInterval time.Duration
	// Tables names the partitioned tables whose chunk tables a repair
	// copies: the cluster supplies every ingested partitioned table.
	Tables func() []string
	// Candidates names the current cluster members eligible as repair
	// targets (the repairer filters out dead ones and current holders).
	Candidates func() []string
	// Rehome is called after a verified copy moved a chunk replica and
	// placement was updated: the hook moves the chunk's fabric export
	// (register `to` first, deregister `from` last, so the chunk is
	// never without a live export). from or to may be empty when a
	// replica was only added or only dropped.
	Rehome func(chunk partition.ChunkID, from, to string)
	// DeadGrace holds re-homing off a freshly dead worker for this long:
	// a durable worker that restarts within the window revives with its
	// chunks recovered from disk, and nothing needs copying. Chunks
	// waiting out the grace count as pending. Zero disables the window
	// (the PR-5 behavior: the first sweep after death re-homes).
	DeadGrace time.Duration
}

func (c RepairConfig) withDefaults() RepairConfig {
	if c.Factor < 1 {
		c.Factor = 1
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 30 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = 5 * time.Second
	}
	return c
}

// RepairProgress is the replication manager's cumulative accounting.
type RepairProgress struct {
	// ChunksRepaired counts verified chunk re-homes since startup.
	ChunksRepaired int
	// ChunksHealed counts in-place refills: a live holder whose
	// inventory was missing a chunk placement assigns it (a worker that
	// restarted hollow) had the chunk copied back without any placement
	// change.
	ChunksHealed int
	// ChunksPending counts chunks the last audit left under-replicated
	// (no live source or target yet); they are retried on the next
	// sweep.
	ChunksPending int
	// ColdHolds counts audit observations of a held-but-not-resident
	// chunk: the holder's inventory lists it but its tables are evicted
	// to the holder's chunk store. Cold is healthy — the worker is
	// paging under a memory budget, and the chunk materializes on first
	// touch — so these are never healed or re-homed; the counter exists
	// to make that visible.
	ColdHolds int
	// TablesCopied / BytesCopied meter the copy traffic.
	TablesCopied int
	BytesCopied  int64
	// LastError is the most recent repair failure, empty when the last
	// audit found nothing broken.
	LastError string
}

// Repairer is the replication manager: it audits placement against the
// failure detector and restores under-replicated chunks by copying
// their tables over the fabric's /repl transaction.
type Repairer struct {
	cfg       RepairConfig
	client    *xrd.Client
	placement *meta.Placement
	det       *Detector

	// runMu serializes sweeps and drains: both walk and mutate
	// placement chunk by chunk.
	runMu sync.Mutex

	mu   sync.Mutex
	prog RepairProgress

	// invCache holds per-audit /inventory answers (a nil entry means the
	// read failed and the worker is assumed intact). Guarded by runMu:
	// it is reset at the top of each Sweep/Drain and filled lazily as
	// repairChunk audits holders.
	invCache map[string]*inventoryAudit

	kick     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRepairer creates a replication manager; Start launches its audit
// loop (tests may call Sweep directly instead).
func NewRepairer(cfg RepairConfig, client *xrd.Client, placement *meta.Placement, det *Detector) *Repairer {
	return &Repairer{
		cfg:       cfg.withDefaults(),
		client:    client,
		placement: placement,
		det:       det,
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
}

// Start launches the background audit loop.
func (r *Repairer) Start() {
	r.wg.Add(1)
	go r.loop()
}

// Close stops the audit loop, waiting for an in-flight sweep.
func (r *Repairer) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// CheckNow kicks an immediate audit (coalesced if one is pending).
func (r *Repairer) CheckNow() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// Progress returns the cumulative repair accounting.
func (r *Repairer) Progress() RepairProgress {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.prog
}

func (r *Repairer) loop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-r.kick:
		case <-t.C:
		}
		r.Sweep()
	}
}

// Sweep audits every placed chunk once: chunks with fewer than Factor
// live replicas are repaired (copy, verify, re-home). The loop calls it
// on kicks and ticks; tests call it directly.
func (r *Repairer) Sweep() {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	r.invCache = nil
	pending := 0
	var lastErr string
	for _, c := range r.placement.Chunks() {
		select {
		case <-r.stop:
			return
		default:
		}
		if err := r.repairChunk(c, ""); err != nil {
			pending++
			lastErr = err.Error()
		}
	}
	r.mu.Lock()
	r.prog.ChunksPending = pending
	r.prog.LastError = lastErr
	r.mu.Unlock()
}

// Drain re-replicates every chunk the worker holds onto other live
// workers, removing the worker from placement chunk by chunk. It fails
// on the first chunk that cannot be moved (leaving already-moved chunks
// moved — the drain can be retried).
func (r *Repairer) Drain(ctx context.Context, worker string) error {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	r.invCache = nil
	for _, c := range r.placement.ChunksOn(worker) {
		if err := ctx.Err(); err != nil {
			return context.Cause(ctx)
		}
		if err := r.repairChunk(c, worker); err != nil {
			return fmt.Errorf("member: drain %s: %w", worker, err)
		}
	}
	return nil
}

// repairChunk restores one chunk to Factor live replicas. drain names a
// worker being decommissioned: it never counts toward the factor and is
// never a target, but — being alive — it may serve as the copy source.
//
// The audit distinguishes three holder failure shapes. A holder dead
// past DeadGrace is a victim: its replica re-homes to a fresh worker. A
// holder dead within the grace is left alone — the chunk counts as
// pending while a durable restart gets its chance to revive with data
// intact. A live holder whose /inventory is missing the chunk came back
// hollow (an in-memory restart, or a durable one whose segments failed
// their checksums and were quarantined): it keeps its placement slot
// and the chunk is copied back in place from an intact replica.
func (r *Repairer) repairChunk(c partition.ChunkID, drain string) error {
	holders := r.placement.Workers(c)
	var alive, hollow, victims []string
	graceWait := false
	for _, h := range holders {
		switch {
		case h == drain:
			victims = append(victims, h)
		case r.det != nil && r.det.Dead(h):
			if r.cfg.DeadGrace > 0 {
				if since, ok := r.det.DeadSince(h); ok && time.Since(since) < r.cfg.DeadGrace {
					graceWait = true
					continue
				}
			}
			victims = append(victims, h)
		case r.holderHasChunk(h, c):
			alive = append(alive, h)
		default:
			hollow = append(hollow, h)
		}
	}
	// Refill hollow holders in place before counting replicas: the heal
	// changes no placement, so a fully recovered restart costs zero
	// re-homes and a hollow one costs only copies back to itself.
	for _, h := range hollow {
		if len(alive) == 0 {
			return fmt.Errorf("member: chunk %d: holder %s is missing the chunk and no intact replica can refill it", c, h)
		}
		logger.Info("repair.start", "chunk", int(c), "kind", "heal", "source", alive[0], "target", h)
		if err := r.copyChunk(alive[0], h, c); err != nil {
			logger.Warn("repair.failed", "chunk", int(c), "kind", "heal", "target", h, "err", err)
			return err
		}
		logger.Info("repair.done", "chunk", int(c), "kind", "heal", "target", h)
		r.invCache[h].chunks[c] = true
		alive = append(alive, h)
		r.mu.Lock()
		r.prog.ChunksHealed++
		r.mu.Unlock()
	}
	needed := r.cfg.Factor - len(alive)
	if needed <= 0 {
		if drain != "" {
			// Enough live replicas without the drained worker: drop it.
			for _, v := range victims {
				r.placement.Remove(c, v)
				r.rehome(c, v, "")
			}
		}
		return nil
	}
	if graceWait {
		// Re-homing now would over-replicate the moment the worker
		// revives; keep the chunk pending until the grace runs out.
		return fmt.Errorf("member: chunk %d: holder dead within restart grace (%v); waiting", c, r.cfg.DeadGrace)
	}
	if len(alive) == 0 && drain == "" {
		return fmt.Errorf("member: chunk %d: no surviving replica (holders %v)", c, holders)
	}
	for needed > 0 {
		source := drain
		if len(alive) > 0 {
			source = alive[0]
		}
		target := r.pickTarget(holders)
		if target == "" {
			return fmt.Errorf("member: chunk %d: no live worker available as a repair target", c)
		}
		logger.Info("repair.start", "chunk", int(c), "kind", "rehome", "source", source, "target", target)
		if err := r.copyChunk(source, target, c); err != nil {
			logger.Warn("repair.failed", "chunk", int(c), "kind", "rehome", "target", target, "err", err)
			return err
		}
		logger.Info("repair.done", "chunk", int(c), "kind", "rehome", "source", source, "target", target)
		// The copy is verified: re-home the replica. Placement first
		// (atomic per chunk, epoch bump), then the fabric export via the
		// hook — surviving replicas keep serving throughout, so queries
		// stay correct mid-repair.
		victim := ""
		if len(victims) > 0 {
			victim, victims = victims[0], victims[1:]
		}
		r.placement.Replace(c, victim, target)
		r.rehome(c, victim, target)
		alive = append(alive, target)
		holders = append(holders, target)
		needed--
		r.mu.Lock()
		r.prog.ChunksRepaired++
		r.mu.Unlock()
	}
	return nil
}

// inventoryAudit is one worker's parsed /inventory answer for the
// duration of a sweep.
type inventoryAudit struct {
	// chunks is what the worker holds — on disk or in memory. This is
	// the set placement is audited against.
	chunks map[partition.ChunkID]bool
	// resident is the materialized subset, nil when the worker omitted
	// it (an in-memory worker, or a pre-residency one).
	resident map[partition.ChunkID]bool
}

// holderHasChunk audits a live holder's actual chunk set against
// placement's belief, via the fabric's /inventory read. Answers are
// cached for the duration of one sweep (callers hold runMu). A failed
// read leaves the worker assumed intact: the detector, not this audit,
// decides deadness, and a transiently unreachable-but-alive worker must
// not trigger spurious copies.
//
// The audit decision is made on the holder's inventory, NOT on
// residency: a chunk evicted to the holder's store under a memory
// budget is still held — healing it in place would re-materialize every
// cold chunk each sweep and defeat the paging. Cold observations are
// only counted (Progress().ColdHolds).
func (r *Repairer) holderHasChunk(h string, c partition.ChunkID) bool {
	if r.invCache == nil {
		r.invCache = map[string]*inventoryAudit{}
	}
	inv, fetched := r.invCache[h]
	if !fetched {
		ctx, done := context.WithTimeout(context.Background(), r.cfg.OpTimeout)
		data, err := r.client.ReadFrom(ctx, h, xrd.InventoryPath)
		done()
		if err == nil {
			var doc struct {
				Chunks   []int `json:"chunks"`
				Resident []int `json:"resident"`
			}
			if json.Unmarshal(data, &doc) == nil {
				inv = &inventoryAudit{chunks: map[partition.ChunkID]bool{}}
				for _, id := range doc.Chunks {
					inv.chunks[partition.ChunkID(id)] = true
				}
				if doc.Resident != nil {
					inv.resident = map[partition.ChunkID]bool{}
					for _, id := range doc.Resident {
						inv.resident[partition.ChunkID(id)] = true
					}
				}
			}
		}
		r.invCache[h] = inv
	}
	if inv == nil {
		return true
	}
	if inv.chunks[c] {
		if inv.resident != nil && !inv.resident[c] {
			r.mu.Lock()
			r.prog.ColdHolds++
			r.mu.Unlock()
		}
		return true
	}
	return false
}

func (r *Repairer) rehome(c partition.ChunkID, from, to string) {
	if r.cfg.Rehome != nil {
		r.cfg.Rehome(c, from, to)
	}
}

// pickTarget chooses the live non-holder with the fewest chunks.
func (r *Repairer) pickTarget(holders []string) string {
	holding := map[string]bool{}
	for _, h := range holders {
		holding[h] = true
	}
	var candidates []string
	if r.cfg.Candidates != nil {
		candidates = r.cfg.Candidates()
	}
	counts := r.placement.Counts()
	best, bestLoad := "", -1
	for _, w := range candidates {
		if holding[w] || (r.det != nil && r.det.Dead(w)) {
			continue
		}
		if load := counts[w]; best == "" || load < bestLoad {
			best, bestLoad = w, load
		}
	}
	return best
}

// copyChunk copies every partitioned table's chunk data from source to
// target over /repl and verifies each table by reading it back: the
// target's re-export must be byte-identical (the codec is deterministic
// and /repl installs preserve row order).
func (r *Repairer) copyChunk(source, target string, c partition.ChunkID) error {
	var tables []string
	if r.cfg.Tables != nil {
		tables = r.cfg.Tables()
	}
	for _, tbl := range tables {
		path := xrd.ReplPath(tbl, int(c))
		ctx, done := context.WithTimeout(context.Background(), r.cfg.OpTimeout)
		data, err := r.client.ReadFrom(ctx, source, path)
		if err == nil {
			err = r.client.WriteTo(ctx, target, path, data)
		}
		var back []byte
		if err == nil {
			back, err = r.client.ReadFrom(ctx, target, path)
		}
		done()
		if err != nil {
			return fmt.Errorf("member: repair chunk %d table %s (%s -> %s): %w", c, tbl, source, target, err)
		}
		if !bytes.Equal(data, back) {
			return fmt.Errorf("member: repair chunk %d table %s (%s -> %s): copy verification failed (%d bytes out, %d back)",
				c, tbl, source, target, len(data), len(back))
		}
		r.mu.Lock()
		r.prog.TablesCopied++
		r.prog.BytesCopied += int64(len(data))
		r.mu.Unlock()
	}
	return nil
}
