// Package planopt is the czar's routing tier (ROADMAP item 4): it
// chooses the chunk set for each analyzed query before dispatch. It
// layers three mechanisms, in decreasing selectivity:
//
//  1. Index dives — `objectId = ?` / `IN (...)` director-key
//     restrictions resolve through the ingest-built secondary index to
//     the owning chunk(s), turning a point query into one job per
//     replica-holding chunk instead of a full fan-out.
//  2. Spatial pruning — WHERE-derived regions (areaspec calls,
//     ra/decl range conjunctions, literal-point cones) intersect the
//     partitioning geometry's cover with the placed chunk set.
//  3. Statistics pruning — per-chunk min/max column statistics
//     recorded at ingest eliminate chunks whose value ranges are
//     disjoint from non-spatial range conjuncts.
//
// Dives and spatial pruning are correctness-preserving restrictions of
// the answer's support, so they are always on; statistics pruning is
// gated by Config.Pruning (the qserv.ClusterConfig.ChunkPruning knob)
// because it depends on ingest-recorded metadata.
package planopt

import (
	"sort"

	"repro/internal/core"
	"repro/internal/meta"
	"repro/internal/partition"
)

// Config tunes the optimizer.
type Config struct {
	// Pruning enables statistics-based chunk elimination. Index dives
	// and spatial pruning are unaffected — they are pure restrictions
	// derived from the query itself.
	Pruning bool
}

// Optimizer implements core.Router over the frontend metadata: catalog
// registry (geometry), secondary object index, and per-chunk column
// statistics. All three views are shared with ingest and repair and
// are safe for concurrent use.
type Optimizer struct {
	reg   *meta.Registry
	index *meta.ObjectIndex // may be nil
	stats *meta.ChunkStats  // may be nil
	cfg   Config
}

// New builds the routing tier. index and stats may be nil; the
// corresponding mechanisms then stay dormant.
func New(reg *meta.Registry, index *meta.ObjectIndex, stats *meta.ChunkStats, cfg Config) *Optimizer {
	return &Optimizer{reg: reg, index: index, stats: stats, cfg: cfg}
}

// Route picks the chunk set for one analyzed query from the currently
// placed chunks.
func (o *Optimizer) Route(a *core.Analysis, placed []partition.ChunkID) core.Route {
	rt := core.Route{Kind: core.RouteFanOut}
	switch {
	case len(a.ObjectIDs) > 0 && o.index != nil:
		rt.Kind = core.RouteIndexDive
		rt.Chunks = core.DiveChunks(o.index, a.ObjectIDs)
	case a.Region != nil:
		rt.Kind = core.RouteSpatial
		rt.Chunks = intersect(o.reg.Chunker.ChunksIn(a.Region), placed)
	default:
		rt.Chunks = append(rt.Chunks, placed...)
		sort.Slice(rt.Chunks, func(i, j int) bool { return rt.Chunks[i] < rt.Chunks[j] })
	}

	// Statistics pruning refines any base route: a chunk whose recorded
	// min/max for some range-restricted column is disjoint from the
	// predicate cannot contribute rows, whichever mechanism selected
	// it. Near-neighbor plans are excluded — their overlap-table rows
	// are not observed by the ingest statistics.
	if o.cfg.Pruning && o.stats != nil && a.NearNeighbor == nil && len(a.Ranges) > 0 {
		kept := rt.Chunks[:0:len(rt.Chunks)]
		for _, c := range rt.Chunks {
			if o.mayMatch(a, c) {
				kept = append(kept, c)
			}
		}
		if len(kept) < len(rt.Chunks) && rt.Kind == core.RouteFanOut {
			rt.Kind = core.RouteStats
		}
		rt.Chunks = kept
	}

	if rt.Pruned = len(placed) - len(rt.Chunks); rt.Pruned < 0 {
		rt.Pruned = 0
	}
	return rt
}

// mayMatch reports whether chunk c can satisfy every recorded range
// restriction. Ranges on the same table as the chunk query are a valid
// pruning witness for the whole chunk job: every partitioned ref in the
// statement reads that same chunk.
func (o *Optimizer) mayMatch(a *core.Analysis, c partition.ChunkID) bool {
	for _, r := range a.Ranges {
		if !o.stats.MayMatch(r.Table, c, r.Column, r.Lo, r.Hi, r.HasLo, r.HasHi) {
			return false
		}
	}
	return true
}

// intersect keeps the cover chunks that are actually placed, in cover
// (ascending) order.
func intersect(cover, placed []partition.ChunkID) []partition.ChunkID {
	in := make(map[partition.ChunkID]bool, len(placed))
	for _, c := range placed {
		in[c] = true
	}
	var out []partition.ChunkID
	for _, c := range cover {
		if in[c] {
			out = append(out, c)
		}
	}
	return out
}
