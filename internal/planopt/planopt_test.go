package planopt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/meta"
	"repro/internal/partition"
	"repro/internal/sphgeom"
	"repro/internal/sqlparse"
)

func setup(t testing.TB) (*meta.Registry, *meta.ObjectIndex, *meta.ChunkStats, []partition.ChunkID) {
	t.Helper()
	ch, err := partition.NewChunker(partition.Config{
		NumStripes: 18, NumSubStripesPerStripe: 4, Overlap: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := datagen.LSSTRegistry(ch)
	ix := meta.NewObjectIndex()
	for i := int64(1); i <= 10; i++ {
		c, s := ch.Locate(sphgeom.NewPoint(float64(i)*10, float64(i)))
		ix.Put(i, meta.ChunkSub{Chunk: c, Sub: s})
	}
	return reg, ix, meta.NewChunkStats(), ch.AllChunks()
}

func analyze(t *testing.T, reg *meta.Registry, sql string) *core.Analysis {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	a, err := core.Analyze(sel, reg)
	if err != nil {
		t.Fatalf("analyze %q: %v", sql, err)
	}
	return a
}

func TestRouteIndexDive(t *testing.T) {
	reg, ix, stats, placed := setup(t)
	o := New(reg, ix, stats, Config{Pruning: true})
	a := analyze(t, reg, "SELECT * FROM Object WHERE objectId = 3")
	rt := o.Route(a, placed)
	if rt.Kind != core.RouteIndexDive || len(rt.Chunks) != 1 {
		t.Fatalf("route = %+v", rt)
	}
	loc, _ := ix.Lookup(3)
	if rt.Chunks[0] != loc.Chunk {
		t.Fatalf("dive landed on %d, index says %d", rt.Chunks[0], loc.Chunk)
	}
	if rt.Pruned != len(placed)-1 {
		t.Fatalf("pruned = %d, want %d", rt.Pruned, len(placed)-1)
	}
}

func TestRouteDiveUnknownObjectDispatchesNothing(t *testing.T) {
	reg, ix, stats, placed := setup(t)
	o := New(reg, ix, stats, Config{})
	a := analyze(t, reg, "SELECT * FROM Object WHERE objectId = 999999")
	rt := o.Route(a, placed)
	if rt.Kind != core.RouteIndexDive || len(rt.Chunks) != 0 {
		t.Fatalf("unknown object route = %+v", rt)
	}
}

func TestRouteSpatialFromCoordRanges(t *testing.T) {
	reg, ix, stats, placed := setup(t)
	o := New(reg, ix, stats, Config{})
	a := analyze(t, reg, "SELECT * FROM Object WHERE ra_PS BETWEEN 10 AND 20 AND decl_PS > 0 AND decl_PS < 5")
	rt := o.Route(a, placed)
	if rt.Kind != core.RouteSpatial {
		t.Fatalf("route kind = %v", rt.Kind)
	}
	if len(rt.Chunks) == 0 || len(rt.Chunks) >= len(placed) {
		t.Fatalf("spatial cover %d of %d placed", len(rt.Chunks), len(placed))
	}
}

func TestRouteConePredicate(t *testing.T) {
	reg, ix, stats, placed := setup(t)
	o := New(reg, ix, stats, Config{})
	a := analyze(t, reg, "SELECT * FROM Object WHERE qserv_angSep(ra_PS, decl_PS, 100.0, -30.0) < 1.5")
	rt := o.Route(a, placed)
	if rt.Kind != core.RouteSpatial {
		t.Fatalf("cone route kind = %v", rt.Kind)
	}
	if len(rt.Chunks) == 0 || len(rt.Chunks) >= len(placed)/2 {
		t.Fatalf("cone cover %d of %d placed", len(rt.Chunks), len(placed))
	}
}

func TestStatsPruningEliminatesDisjointChunks(t *testing.T) {
	reg, ix, stats, placed := setup(t)
	// Half the chunks hold uFlux_PS in [0, 1], the other half in [5, 6].
	per := map[partition.ChunkID]map[string]meta.ColStats{}
	for i, c := range placed {
		lo := 0.0
		if i%2 == 1 {
			lo = 5.0
		}
		per[c] = map[string]meta.ColStats{"uFlux_PS": {Min: lo, Max: lo + 1, Rows: 10}}
	}
	stats.SetTable("Object", per)

	a := analyze(t, reg, "SELECT * FROM Object WHERE uFlux_PS < 2.0")
	on := New(reg, ix, stats, Config{Pruning: true})
	rt := on.Route(a, placed)
	if rt.Kind != core.RouteStats {
		t.Fatalf("route kind = %v, want STATS", rt.Kind)
	}
	if len(rt.Chunks) != (len(placed)+1)/2 {
		t.Fatalf("stats kept %d of %d chunks", len(rt.Chunks), len(placed))
	}
	if rt.Pruned != len(placed)-len(rt.Chunks) {
		t.Fatalf("pruned = %d", rt.Pruned)
	}

	// The knob really gates it.
	off := New(reg, ix, stats, Config{Pruning: false})
	if rt := off.Route(a, placed); rt.Kind != core.RouteFanOut || len(rt.Chunks) != len(placed) {
		t.Fatalf("pruning off still routed %+v", rt)
	}
}

func TestStatsPruningMissingStatsKeepsChunks(t *testing.T) {
	reg, ix, stats, placed := setup(t)
	o := New(reg, ix, stats, Config{Pruning: true})
	a := analyze(t, reg, "SELECT * FROM Object WHERE uFlux_PS < 2.0")
	rt := o.Route(a, placed)
	if rt.Kind != core.RouteFanOut || len(rt.Chunks) != len(placed) {
		t.Fatalf("no-stats route = %+v, want untouched fan-out", rt)
	}
}

func TestStatsPruningRefinesADive(t *testing.T) {
	reg, ix, stats, placed := setup(t)
	loc, _ := ix.Lookup(3)
	stats.SetTable("Object", map[partition.ChunkID]map[string]meta.ColStats{
		loc.Chunk: {"uFlux_PS": {Min: 0, Max: 1, Rows: 10}},
	})
	o := New(reg, ix, stats, Config{Pruning: true})
	a := analyze(t, reg, "SELECT * FROM Object WHERE objectId = 3 AND uFlux_PS > 4")
	rt := o.Route(a, placed)
	// The dive found the owning chunk, but its recorded flux range is
	// disjoint from the predicate: nothing needs dispatching. The kind
	// stays INDEX_DIVE — that is the dominant mechanism.
	if rt.Kind != core.RouteIndexDive || len(rt.Chunks) != 0 {
		t.Fatalf("refined dive = %+v", rt)
	}
}

func TestNearNeighborNeverStatsPruned(t *testing.T) {
	reg, ix, stats, placed := setup(t)
	per := map[partition.ChunkID]map[string]meta.ColStats{}
	for _, c := range placed {
		per[c] = map[string]meta.ColStats{"uFlux_PS": {Min: 5, Max: 6, Rows: 10}}
	}
	stats.SetTable("Object", per)
	o := New(reg, ix, stats, Config{Pruning: true})
	a := analyze(t, reg,
		"SELECT COUNT(*) FROM Object o1, Object o2 WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1 AND o1.uFlux_PS < 2")
	if a.NearNeighbor == nil {
		t.Fatal("near-neighbor not detected")
	}
	rt := o.Route(a, placed)
	if len(rt.Chunks) != len(placed) {
		t.Fatalf("near-neighbor plan was stats-pruned: %d of %d", len(rt.Chunks), len(placed))
	}
}
