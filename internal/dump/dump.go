// Package dump implements the paper's result-transfer mechanism (section
// 5.4): a worker's result table is serialized to a byte stream of SQL
// statements — as mysqldump does — which the master reads byte-for-byte
// and re-executes against its local engine to load the rows.
//
// The paper calls out the overhead of this path ("its costs in speed,
// disk, network, and database transactions are strong motivations to
// explore a more efficient method", section 7.1); the serializer
// therefore reports the exact byte count shipped so the cost model can
// charge for it.
//
// The master side offers three loaders: Load (execute into the default
// database), LoadInto (execute into a caller-chosen per-query namespace,
// so concurrent user queries whose content-addressed streams collide on
// table names never contend), and Decode (engine-free: parse the stream
// straight into schema + rows, the form the czar's streaming merge
// pipeline consumes from its dispatch goroutines).
package dump

import (
	"fmt"
	"strings"

	"repro/internal/sqlengine"
	"repro/internal/sqlparse"
)

// maxRowsPerInsert bounds the rows batched into one INSERT statement,
// matching mysqldump's extended-insert batching behavior.
const maxRowsPerInsert = 500

// Dump serializes a query result as a SQL script that recreates it as
// table `name`: DROP TABLE IF EXISTS, CREATE TABLE, then batched INSERTs.
func Dump(name string, res *sqlengine.Result) string {
	var sb strings.Builder
	writeHeader(&sb, name, res.Cols, res.Types)
	writeRows(&sb, name, res.Rows)
	return sb.String()
}

// DumpTable serializes a stored table under a new name.
func DumpTable(name string, t *sqlengine.Table) string {
	var sb strings.Builder
	cols := t.Schema.Names()
	types := make([]sqlparse.ColType, len(t.Schema))
	for i, c := range t.Schema {
		types[i] = c.Type
	}
	writeHeader(&sb, name, cols, types)
	writeRows(&sb, name, t.Rows)
	return sb.String()
}

func writeHeader(sb *strings.Builder, name string, cols []string, types []sqlparse.ColType) {
	sb.WriteString("-- qserv result dump\n")
	fmt.Fprintf(sb, "DROP TABLE IF EXISTS %s;\n", quoteIdent(name))
	fmt.Fprintf(sb, "CREATE TABLE %s (", quoteIdent(name))
	for i, c := range cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		typ := sqlparse.TypeFloat
		if i < len(types) {
			typ = types[i]
		}
		sb.WriteString(quoteIdent(c))
		sb.WriteByte(' ')
		sb.WriteString(typ.String())
	}
	sb.WriteString(");\n")
}

func writeRows(sb *strings.Builder, name string, rows []sqlengine.Row) {
	for start := 0; start < len(rows); start += maxRowsPerInsert {
		end := start + maxRowsPerInsert
		if end > len(rows) {
			end = len(rows)
		}
		fmt.Fprintf(sb, "INSERT INTO %s VALUES ", quoteIdent(name))
		for i, row := range rows[start:end] {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteByte('(')
			for j, v := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(literalSQL(v))
			}
			sb.WriteByte(')')
		}
		sb.WriteString(";\n")
	}
}

// literalSQL renders one value as a SQL literal.
func literalSQL(v sqlengine.Value) string {
	lit := &sqlparse.Literal{Val: v}
	return lit.SQL()
}

// quoteIdent renders a (possibly qualified) table name. Column and table
// names pass through sqlparse quoting rules.
func quoteIdent(name string) string {
	// Qualified names (db.table) quote each part separately.
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return quotePart(name[:i]) + "." + quotePart(name[i+1:])
	}
	return quotePart(name)
}

func quotePart(s string) string {
	ref := sqlparse.TableRef{Table: s}
	return ref.SQL()
}

// Load materializes a dump stream's table into the database the stream
// names (the engine's default database when unqualified). It returns
// the created table's name — qualified as the stream spelled it — and
// the number of rows loaded. This is the master-side "read
// byte-for-byte and execute" step of section 5.4.
func Load(e *sqlengine.Engine, script string) (string, int, error) {
	dec, err := Decode(script)
	if err != nil {
		return "", 0, err
	}
	db, name := dec.DB, dec.Name
	if db == "" {
		db = e.DefaultDB()
	} else {
		name = db + "." + dec.Name
	}
	if err := install(e, db, dec); err != nil {
		return "", 0, err
	}
	return name, len(dec.Rows), nil
}

// LoadInto materializes a dump stream's table into the named database —
// a caller-chosen namespace, created if absent. Worker result tables
// are content-addressed (r_<hash>), so two identical in-flight user
// queries produce identical table names; loading each query's streams
// into its own namespace lets concurrent merges proceed without any
// cross-query serialization. A database qualifier inside the stream is
// overridden by db.
func LoadInto(e *sqlengine.Engine, db, script string) (string, int, error) {
	dec, err := Decode(script)
	if err != nil {
		return "", 0, err
	}
	if err := install(e, db, dec); err != nil {
		return "", 0, err
	}
	return dec.Name, len(dec.Rows), nil
}

func install(e *sqlengine.Engine, db string, dec *Decoded) error {
	t := sqlengine.NewTable(dec.Name, dec.Schema)
	if err := t.Insert(dec.Rows...); err != nil {
		return fmt.Errorf("dump: load: %w", err)
	}
	e.CreateDatabase(db).Put(t)
	return nil
}

// Decoded is the in-memory form of one dump stream: the table it would
// create and the rows it would insert, with values coerced to the
// declared column types.
type Decoded struct {
	// DB is the database qualifier the stream carries, usually empty.
	DB     string
	Name   string
	Schema sqlengine.Schema
	Rows   []sqlengine.Row
}

// Decode parses a dump stream without touching any engine: it reads the
// CREATE TABLE schema and evaluates the INSERT literals into rows. This
// is the lock-free half of the czar's streaming merge — dispatch
// goroutines decode concurrently and only the final row append
// synchronizes.
func Decode(script string) (*Decoded, error) {
	stmts, err := sqlparse.ParseScript(script)
	if err != nil {
		return nil, fmt.Errorf("dump: parse: %w", err)
	}
	dec := &Decoded{}
	for _, st := range stmts {
		switch s := st.(type) {
		case *sqlparse.DropTable:
			// Preamble; nothing to do.
		case *sqlparse.CreateTable:
			if dec.Name != "" {
				return nil, fmt.Errorf("dump: stream creates more than one table")
			}
			dec.DB = s.DB
			dec.Name = s.Name
			dec.Schema = make(sqlengine.Schema, len(s.Cols))
			for i, c := range s.Cols {
				dec.Schema[i] = sqlengine.Column{Name: c.Name, Type: c.Type}
			}
		case *sqlparse.Insert:
			if dec.Name == "" {
				return nil, fmt.Errorf("dump: INSERT before CREATE TABLE")
			}
			if !nameMatches(s.Table, dec.Name) {
				return nil, fmt.Errorf("dump: INSERT into %q, stream table is %q", s.Table, dec.Name)
			}
			for _, exprRow := range s.Rows {
				if len(exprRow) != len(dec.Schema) {
					return nil, fmt.Errorf("dump: row arity %d != schema arity %d",
						len(exprRow), len(dec.Schema))
				}
				row := make(sqlengine.Row, len(exprRow))
				for i, ex := range exprRow {
					v, err := literalValue(ex)
					if err != nil {
						return nil, err
					}
					row[i] = coerceValue(v, dec.Schema[i].Type)
				}
				dec.Rows = append(dec.Rows, row)
			}
		default:
			return nil, fmt.Errorf("dump: unexpected %T in dump stream", st)
		}
	}
	if dec.Name == "" {
		return nil, fmt.Errorf("dump: stream contains no CREATE TABLE")
	}
	return dec, nil
}

func nameMatches(a, b string) bool { return strings.EqualFold(a, b) }

// literalValue evaluates the constant expressions the serializer emits:
// literals and sign-prefixed numeric literals.
func literalValue(e sqlparse.Expr) (sqlengine.Value, error) {
	switch v := e.(type) {
	case *sqlparse.Literal:
		switch x := v.Val.(type) {
		case nil, int64, float64, string:
			return x, nil
		case bool:
			if x {
				return int64(1), nil
			}
			return int64(0), nil
		default:
			return nil, fmt.Errorf("dump: unsupported literal %T", x)
		}
	case *sqlparse.UnaryExpr:
		x, err := literalValue(v.X)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "-":
			switch n := x.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, fmt.Errorf("dump: cannot negate %T", x)
		case "+":
			return x, nil
		}
		return nil, fmt.Errorf("dump: unsupported operator %q in dump stream", v.Op)
	default:
		return nil, fmt.Errorf("dump: non-literal expression %T in dump stream", e)
	}
}

// coerceValue converts a decoded value to the column's storage type,
// mirroring the engine's INSERT coercion so a decoded table is
// indistinguishable from an executed one.
func coerceValue(v sqlengine.Value, t sqlparse.ColType) sqlengine.Value {
	if sqlengine.IsNull(v) {
		return nil
	}
	switch t {
	case sqlparse.TypeInt:
		if n, err := sqlengine.AsInt(v); err == nil {
			return n
		}
	case sqlparse.TypeFloat:
		if f, err := sqlengine.AsFloat(v); err == nil {
			return f
		}
	case sqlparse.TypeString:
		return sqlengine.FormatValue(v)
	}
	return v
}
