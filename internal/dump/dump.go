// Package dump implements the paper's result-transfer mechanism (section
// 5.4): a worker's result table is serialized to a byte stream of SQL
// statements — as mysqldump does — which the master reads byte-for-byte
// and re-executes against its local engine to load the rows.
//
// The paper calls out the overhead of this path ("its costs in speed,
// disk, network, and database transactions are strong motivations to
// explore a more efficient method", section 7.1); the serializer
// therefore reports the exact byte count shipped so the cost model can
// charge for it.
package dump

import (
	"fmt"
	"strings"

	"repro/internal/sqlengine"
	"repro/internal/sqlparse"
)

// maxRowsPerInsert bounds the rows batched into one INSERT statement,
// matching mysqldump's extended-insert batching behavior.
const maxRowsPerInsert = 500

// Dump serializes a query result as a SQL script that recreates it as
// table `name`: DROP TABLE IF EXISTS, CREATE TABLE, then batched INSERTs.
func Dump(name string, res *sqlengine.Result) string {
	var sb strings.Builder
	writeHeader(&sb, name, res.Cols, res.Types)
	writeRows(&sb, name, res.Rows)
	return sb.String()
}

// DumpTable serializes a stored table under a new name.
func DumpTable(name string, t *sqlengine.Table) string {
	var sb strings.Builder
	cols := t.Schema.Names()
	types := make([]sqlparse.ColType, len(t.Schema))
	for i, c := range t.Schema {
		types[i] = c.Type
	}
	writeHeader(&sb, name, cols, types)
	writeRows(&sb, name, t.Rows)
	return sb.String()
}

func writeHeader(sb *strings.Builder, name string, cols []string, types []sqlparse.ColType) {
	sb.WriteString("-- qserv result dump\n")
	fmt.Fprintf(sb, "DROP TABLE IF EXISTS %s;\n", quoteIdent(name))
	fmt.Fprintf(sb, "CREATE TABLE %s (", quoteIdent(name))
	for i, c := range cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		typ := sqlparse.TypeFloat
		if i < len(types) {
			typ = types[i]
		}
		sb.WriteString(quoteIdent(c))
		sb.WriteByte(' ')
		sb.WriteString(typ.String())
	}
	sb.WriteString(");\n")
}

func writeRows(sb *strings.Builder, name string, rows []sqlengine.Row) {
	for start := 0; start < len(rows); start += maxRowsPerInsert {
		end := start + maxRowsPerInsert
		if end > len(rows) {
			end = len(rows)
		}
		fmt.Fprintf(sb, "INSERT INTO %s VALUES ", quoteIdent(name))
		for i, row := range rows[start:end] {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteByte('(')
			for j, v := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(literalSQL(v))
			}
			sb.WriteByte(')')
		}
		sb.WriteString(";\n")
	}
}

// literalSQL renders one value as a SQL literal.
func literalSQL(v sqlengine.Value) string {
	lit := &sqlparse.Literal{Val: v}
	return lit.SQL()
}

// quoteIdent renders a (possibly qualified) table name. Column and table
// names pass through sqlparse quoting rules.
func quoteIdent(name string) string {
	// Qualified names (db.table) quote each part separately.
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return quotePart(name[:i]) + "." + quotePart(name[i+1:])
	}
	return quotePart(name)
}

func quotePart(s string) string {
	ref := sqlparse.TableRef{Table: s}
	return ref.SQL()
}

// Load executes a dump script against an engine, materializing the table
// it describes. It returns the created table's name and the number of
// rows loaded. This is the master-side "read byte-for-byte and execute"
// step of section 5.4.
func Load(e *sqlengine.Engine, script string) (string, int, error) {
	stmts, err := sqlparse.ParseScript(script)
	if err != nil {
		return "", 0, fmt.Errorf("dump: parse: %w", err)
	}
	name := ""
	rows := 0
	for _, st := range stmts {
		switch s := st.(type) {
		case *sqlparse.CreateTable:
			name = s.Name
			if s.DB != "" {
				name = s.DB + "." + s.Name
			}
		case *sqlparse.Insert:
			rows += len(s.Rows)
		case *sqlparse.DropTable:
			// allowed
		case *sqlparse.Select:
			return "", 0, fmt.Errorf("dump: unexpected SELECT in dump stream")
		}
		if _, err := e.ExecuteStmt(st); err != nil {
			return "", 0, fmt.Errorf("dump: execute: %w", err)
		}
	}
	if name == "" {
		return "", 0, fmt.Errorf("dump: stream contains no CREATE TABLE")
	}
	return name, rows, nil
}
