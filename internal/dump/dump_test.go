package dump

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sqlengine"
)

func sourceEngine(t *testing.T) *sqlengine.Engine {
	t.Helper()
	e := sqlengine.New("LSST")
	if _, err := e.Execute(`CREATE TABLE r (objectId BIGINT, ra DOUBLE, note VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(`INSERT INTO r VALUES
		(1, 10.25, 'plain'),
		(2, -0.5, 'it''s quoted'),
		(3, 1e-30, NULL),
		(4, NULL, 'null ra')`); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRoundTripTable(t *testing.T) {
	src := sourceEngine(t)
	db, _ := src.Database("LSST")
	tbl, _ := db.Table("r")

	script := DumpTable("result_abc", tbl)
	dst := sqlengine.New("LSST")
	name, n, err := Load(dst, script)
	if err != nil {
		t.Fatal(err)
	}
	if name != "result_abc" || n != 4 {
		t.Fatalf("name=%q n=%d", name, n)
	}
	res, err := dst.Query("SELECT objectId, ra, note FROM result_abc ORDER BY objectId")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].(float64) != 10.25 {
		t.Errorf("ra[0] = %v", res.Rows[0][1])
	}
	if res.Rows[1][2].(string) != "it's quoted" {
		t.Errorf("quoted string lost: %q", res.Rows[1][2])
	}
	if got := res.Rows[2][1].(float64); math.Abs(got-1e-30)/1e-30 > 1e-12 {
		t.Errorf("tiny float lost precision: %v", got)
	}
	if !sqlengine.IsNull(res.Rows[2][2]) || !sqlengine.IsNull(res.Rows[3][1]) {
		t.Error("NULLs not preserved")
	}
}

func TestRoundTripQueryResult(t *testing.T) {
	src := sourceEngine(t)
	res, err := src.Query("SELECT objectId, ra * 2 AS ra2 FROM r WHERE objectId <= 2 ORDER BY objectId")
	if err != nil {
		t.Fatal(err)
	}
	script := Dump("res_1", res)
	dst := sqlengine.New("LSST")
	if _, _, err := Load(dst, script); err != nil {
		t.Fatal(err)
	}
	out, err := dst.Query("SELECT ra2 FROM res_1 ORDER BY objectId")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].(float64) != 20.5 || out.Rows[1][0].(float64) != -1.0 {
		t.Errorf("values: %v", out.Rows)
	}
}

func TestEmptyResult(t *testing.T) {
	src := sourceEngine(t)
	res, err := src.Query("SELECT objectId FROM r WHERE objectId = 999")
	if err != nil {
		t.Fatal(err)
	}
	script := Dump("empty_r", res)
	dst := sqlengine.New("LSST")
	name, n, err := Load(dst, script)
	if err != nil {
		t.Fatal(err)
	}
	if name != "empty_r" || n != 0 {
		t.Errorf("name=%q n=%d", name, n)
	}
	out, err := dst.Query("SELECT COUNT(*) FROM empty_r")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].(int64) != 0 {
		t.Error("empty table should load as empty")
	}
}

func TestDumpOverwritesExisting(t *testing.T) {
	// The DROP TABLE IF EXISTS header must let a reload replace a stale
	// result table.
	src := sourceEngine(t)
	db, _ := src.Database("LSST")
	tbl, _ := db.Table("r")
	script := DumpTable("res", tbl)
	dst := sqlengine.New("LSST")
	if _, _, err := Load(dst, script); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dst, script); err != nil {
		t.Fatalf("second load failed: %v", err)
	}
	out, err := dst.Query("SELECT COUNT(*) FROM res")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].(int64) != 4 {
		t.Errorf("rows after reload = %v", out.Rows[0][0])
	}
}

func TestBatchedInserts(t *testing.T) {
	e := sqlengine.New("LSST")
	if _, err := e.Execute("CREATE TABLE big (i BIGINT)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO big VALUES ")
	for i := 0; i < 1200; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("(")
		sb.WriteString(sqlengine.FormatValue(int64(i)))
		sb.WriteString(")")
	}
	if _, err := e.Execute(sb.String()); err != nil {
		t.Fatal(err)
	}
	db, _ := e.Database("LSST")
	tbl, _ := db.Table("big")
	script := DumpTable("big2", tbl)
	// 1200 rows with 500-row batching = 3 INSERT statements.
	if got := strings.Count(script, "INSERT INTO"); got != 3 {
		t.Errorf("INSERT statements = %d, want 3", got)
	}
	dst := sqlengine.New("LSST")
	_, n, err := Load(dst, script)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1200 {
		t.Errorf("loaded %d rows", n)
	}
}

func TestQualifiedTargetName(t *testing.T) {
	src := sourceEngine(t)
	db, _ := src.Database("LSST")
	tbl, _ := db.Table("r")
	script := DumpTable("resultdb.res_77", tbl)
	dst := sqlengine.New("main")
	dst.CreateDatabase("resultdb")
	name, _, err := Load(dst, script)
	if err != nil {
		t.Fatal(err)
	}
	if name != "resultdb.res_77" {
		t.Errorf("name = %q", name)
	}
	if _, err := dst.Query("SELECT * FROM resultdb.res_77"); err != nil {
		t.Errorf("qualified table not queryable: %v", err)
	}
}

func TestDecode(t *testing.T) {
	src := sourceEngine(t)
	db, _ := src.Database("LSST")
	tbl, _ := db.Table("r")
	dec, err := Decode(DumpTable("res_1", tbl))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != "res_1" || len(dec.Rows) != 4 || len(dec.Schema) != 3 {
		t.Fatalf("dec = %+v", dec)
	}
	// Types survive: BIGINT column decodes to int64, DOUBLE to float64,
	// VARCHAR to string, NULL to nil — including the negative float.
	if dec.Schema[0].Type.String() != "BIGINT" {
		t.Errorf("schema: %+v", dec.Schema)
	}
	if _, ok := dec.Rows[0][0].(int64); !ok {
		t.Errorf("objectId decoded as %T", dec.Rows[0][0])
	}
	if got := dec.Rows[1][1].(float64); got != -0.5 {
		t.Errorf("negative float decoded as %v", dec.Rows[1][1])
	}
	if got := dec.Rows[1][2].(string); got != "it's quoted" {
		t.Errorf("string decoded as %q", got)
	}
	if !sqlengine.IsNull(dec.Rows[2][2]) {
		t.Error("NULL lost in decode")
	}
}

func TestDecodeRejectsNonDumpStatements(t *testing.T) {
	for _, script := range []string{
		"SELECT 1;",
		"CREATE TABLE a (x BIGINT); CREATE TABLE b (y BIGINT);",
		"INSERT INTO a VALUES (1);",
		"CREATE TABLE a (x BIGINT); INSERT INTO other VALUES (1);",
		"DROP TABLE IF EXISTS a;",
	} {
		if _, err := Decode(script); err == nil {
			t.Errorf("Decode(%q) should fail", script)
		}
	}
}

func TestLoadIntoNamespaces(t *testing.T) {
	// Two "concurrent user queries" load identical content-addressed
	// streams; per-query namespaces keep them from colliding without
	// any cross-query lock.
	src := sourceEngine(t)
	db, _ := src.Database("LSST")
	tbl, _ := db.Table("r")
	script := DumpTable("r_abc123", tbl)

	e := sqlengine.New("LSST")
	for _, ns := range []string{"q1", "q2"} {
		name, n, err := LoadInto(e, ns, script)
		if err != nil {
			t.Fatal(err)
		}
		if name != "r_abc123" || n != 4 {
			t.Fatalf("ns %s: name=%q n=%d", ns, name, n)
		}
	}
	for _, ns := range []string{"q1", "q2"} {
		out, err := e.Query("SELECT COUNT(*) FROM " + ns + ".r_abc123")
		if err != nil {
			t.Fatal(err)
		}
		if out.Rows[0][0].(int64) != 4 {
			t.Errorf("ns %s: count = %v", ns, out.Rows[0][0])
		}
	}
	// The default database never saw a staging table.
	def, _ := e.Database("LSST")
	if n := len(def.TableNames()); n != 0 {
		t.Errorf("default db polluted: %v", def.TableNames())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dst := sqlengine.New("LSST")
	if _, _, err := Load(dst, "this is not SQL"); err == nil {
		t.Error("garbage should fail")
	}
	if _, _, err := Load(dst, "INSERT INTO nowhere VALUES (1);"); err == nil {
		t.Error("insert into missing table should fail")
	}
	if _, _, err := Load(dst, "DROP TABLE IF EXISTS x;"); err == nil {
		t.Error("stream without CREATE should fail")
	}
	if _, _, err := Load(dst, "SELECT 1;"); err == nil {
		t.Error("SELECT in dump stream should fail")
	}
}

func TestDumpByteSizeMatchesOverheadClaim(t *testing.T) {
	// The dump stream is strictly larger than the raw row data — the
	// overhead the paper complains about in section 7.1.
	src := sourceEngine(t)
	db, _ := src.Database("LSST")
	tbl, _ := db.Table("r")
	script := DumpTable("res", tbl)
	if int64(len(script)) <= tbl.ByteSize()/2 {
		t.Errorf("dump suspiciously small: %d bytes vs table %d", len(script), tbl.ByteSize())
	}
	if !strings.Contains(script, "CREATE TABLE") || !strings.Contains(script, "INSERT INTO") {
		t.Error("dump missing structural statements")
	}
}

func TestSpecialFloatValues(t *testing.T) {
	e := sqlengine.New("LSST")
	if _, err := e.Execute("CREATE TABLE f (x DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute("INSERT INTO f VALUES (0.1), (1234567890.12345), (-1e300)"); err != nil {
		t.Fatal(err)
	}
	db, _ := e.Database("LSST")
	tbl, _ := db.Table("f")
	dst := sqlengine.New("LSST")
	if _, _, err := Load(dst, DumpTable("f2", tbl)); err != nil {
		t.Fatal(err)
	}
	out, err := dst.Query("SELECT x FROM f2 ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1e300, 0.1, 1234567890.12345}
	for i, w := range want {
		if got := out.Rows[i][0].(float64); got != w {
			t.Errorf("row %d: %v != %v", i, got, w)
		}
	}
}

func BenchmarkDumpLoad1kRows(b *testing.B) {
	e := sqlengine.New("LSST")
	e.MustExecute("CREATE TABLE big (i BIGINT, x DOUBLE)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO big VALUES ")
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("(")
		sb.WriteString(sqlengine.FormatValue(int64(i)))
		sb.WriteString(", 0.5)")
	}
	e.MustExecute(sb.String())
	db, _ := e.Database("LSST")
	tbl, _ := db.Table("big")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		script := DumpTable("copy", tbl)
		dst := sqlengine.New("LSST")
		if _, _, err := Load(dst, script); err != nil {
			b.Fatal(err)
		}
	}
}
