// Scaling: regenerates the paper's weak-scaling experiment (section
// 6.3, Figures 8-11) on the virtual-time simulation: the 150-node
// cluster's frontend is configured to dispatch only to the chunks of
// the first 40/100/150 nodes, holding data per node constant — exactly
// the paper's methodology. Low-volume queries stay flat; HV1 grows with
// chunk count (master dispatch overhead); HV2 stays flat (near-perfect
// weak scaling).
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/simcluster"
)

func main() {
	fmt.Println("building the 150-node paper-geometry cluster...")
	cat, err := datagen.Generate(
		datagen.Config{Seed: 1, ObjectsPerPatch: 60, MeanSourcesPerObject: 2},
		datagen.DefaultDuplicateConfig(),
	)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := simcluster.New(simcluster.PaperConfig(), cat)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Printf("loaded %d chunks over 150 simulated nodes\n\n", len(cl.PlacedChunks()))

	nodes := []int{40, 100, 150}
	fmt.Printf("%-6s", "class")
	for _, n := range nodes {
		fmt.Printf(" %9d", n)
	}
	fmt.Println(" | paper shape")
	shapes := map[string]string{
		"LV1": "flat ~4 s (Figure 8)",
		"HV1": "linear in chunks (Figure 11)",
		"HV2": "flat — perfect weak scaling (Figure 11)",
	}
	for _, class := range []string{"LV1", "HV1", "HV2"} {
		fmt.Printf("%-6s", class)
		for _, n := range nodes {
			v, err := cl.WeakScalingPoint(class, n, 1, 9)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.1fs", v)
		}
		fmt.Printf(" | %s\n", shapes[class])
	}
}
