// Shared scanning: the paper's section 4.3 design idea (convoy
// scheduling), which it planned to implement "later this year". With
// table scans the norm, k concurrent full-scan queries share one
// sequential pass over the table instead of issuing k seek-inducing
// scans — so "results from many full-scan queries can be returned in
// little more than the time for a single full-scan query".
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/datagen"
	"repro/internal/meta"
	"repro/internal/scanshare"
	"repro/internal/sqlengine"
)

func main() {
	// One worker-scale chunk table with a few hundred thousand rows.
	cat, err := datagen.Generate(
		datagen.Config{Seed: 2, ObjectsPerPatch: 3000, MeanSourcesPerObject: 0},
		datagen.DuplicateConfig{DeclBands: 1, MaxCopies: 40},
	)
	if err != nil {
		log.Fatal(err)
	}
	tbl := sqlengine.NewTable("Object", meta.ObjectSchema())
	for _, o := range cat.Objects {
		if err := tbl.Insert(sqlengine.Row{
			o.ObjectID, o.RA, o.Decl, o.UFlux, o.GFlux, o.RFlux,
			o.IFlux, o.ZFlux, o.YFlux, o.UFluxSG, o.URadiusPS,
			int64(0), int64(0)}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("table: %d rows, %d bytes\n\n", len(tbl.Rows), tbl.ByteSize())

	scanner, err := scanshare.NewScanner(tbl, 4096)
	if err != nil {
		log.Fatal(err)
	}

	// Eight analytic queries join one convoy. Each filters on a
	// different magnitude cut, so they are genuinely distinct queries
	// sharing physical I/O.
	const k = 8
	type result struct {
		cut   float64
		count int64
	}
	results := make([]result, k)
	tickets := make([]*scanshare.Ticket, k)
	for i := 0; i < k; i++ {
		i := i
		cut := 20.0 + float64(i)
		results[i].cut = cut
		tickets[i] = scanner.Attach(func(piece []sqlengine.Row) {
			var n int64
			for _, r := range piece {
				flux := r[7].(float64) // zFlux_PS
				if -2.5*math.Log10(flux)-48.6 < cut {
					n++
				}
			}
			results[i].count += n
		})
	}
	// A ninth query joins the convoy and is killed mid-scan: it is
	// dropped at the next piece boundary — the convoy's pace and the
	// other members' results are unaffected, and the table is not read
	// to completion on the dead query's behalf.
	killed := scanner.Attach(func([]sqlengine.Row) {})
	killed.Abandon()
	killed.Wait() // returns once the convoy drops the ticket

	for _, tk := range tickets {
		tk.Wait()
	}

	fmt.Println("query                       rows matched")
	for _, r := range results {
		fmt.Printf("zMag < %-4.0f %12d\n", r.cut, r.count)
	}
	shared := scanner.BytesRead()
	independent := scanshare.IndependentScanBytes(tbl, k)
	fmt.Printf("\nphysical I/O with the convoy: %d bytes (%.2f table passes)\n",
		shared, float64(shared)/float64(tbl.ByteSize()))
	fmt.Printf("without sharing:              %d bytes (%d passes)\n", independent, k)
	fmt.Printf("saved scans joined mid-convoy: %d\n", scanner.ScansSaved())
}
