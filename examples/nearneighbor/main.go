// Near-neighbor: the paper's Super High Volume 1 workload — find pairs
// of objects within a small angular distance inside a sky region. This
// is the query class two-level partitioning and overlap exist for
// (sections 4.4 and 5.2): the czar rewrites the self-join into
// per-subchunk joins against on-the-fly subchunk and overlap tables, so
// no worker ever needs another worker's rows.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/datagen"
)

func main() {
	cat, err := datagen.Generate(
		datagen.Config{Seed: 11, ObjectsPerPatch: 800, MeanSourcesPerObject: 0},
		datagen.DuplicateConfig{DeclBands: 1, MaxCopies: 20},
	)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := qserv.NewCluster(qserv.DefaultClusterConfig(6))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Load(cat); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d objects over a %d-chunk equatorial band\n\n",
		len(cat.Objects), len(cluster.Placement.Chunks()))

	// Count ordered pairs within 0.2 degrees inside a 10x10 degree box
	// (the paper's SHV1 shape; radius must be <= the 0.5 degree overlap
	// this cluster is partitioned with). Near-neighbor joins are the
	// system's most expensive class — submit as a session with a
	// deadline, watching progress while the join runs.
	sql := `SELECT count(*) FROM Object o1, Object o2
		WHERE qserv_areaspec_box(2, -5, 12, 5)
		AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.2`
	q, err := cluster.Submit(context.Background(), sql, qserv.WithDeadline(5*time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	p := q.Progress()
	fmt.Printf("> %s  (session %d, %d/%d chunks)\n", sql, q.ID(), p.ChunksCompleted, p.ChunksTotal)
	fmt.Printf("pairs (including self-pairs): %v\n", res.Rows[0][0])
	fmt.Printf("chunk queries dispatched: %d (each ran one join per subchunk,\n", res.ChunksDispatched)
	fmt.Println("plus one against the subchunk's overlap table for border pairs)")

	// The same radius beyond the configured overlap is rejected — the
	// system cannot answer it correctly without data exchange.
	_, err = cluster.Query(`SELECT count(*) FROM Object o1, Object o2
		WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 2.0`)
	fmt.Printf("\nradius beyond overlap correctly rejected: %v\n", err)
}
