// Custom catalog: a non-LSST schema defined purely through the public
// declarative spec API — no internal packages, no hand-rolled loaders.
//
// The catalog is a global sensor network: Station is the director
// table (spatially partitioned by longitude/latitude, keyed by
// stationId), Reading is its child time-series table (each reading is
// stored in the chunk holding its station, so station-key joins and
// dives never cross nodes), and SensorKind is a small replicated
// dimension table. The same czar/worker/fabric path that serves the
// paper's astronomy workload answers distributed queries over it, and
// every answer is checked against a single-node oracle built from the
// identical spec and rows.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro"
)

func sensorSpec() qserv.CatalogSpec {
	return qserv.CatalogSpec{
		Database: "sensors",
		Tables: []qserv.TableSpec{
			{
				Name: "Station",
				Kind: qserv.Director,
				Columns: []qserv.ColumnSpec{
					{Name: "stationId", Type: qserv.Integer},
					{Name: "lon", Type: qserv.Double},
					{Name: "lat", Type: qserv.Double},
					{Name: "elevation", Type: qserv.Double},
					{Name: "kindId", Type: qserv.Integer},
				},
				RAColumn:    "lon",
				DeclColumn:  "lat",
				DirectorKey: "stationId",
				Overlap:     true,
			},
			{
				Name: "Reading",
				Kind: qserv.Child,
				Columns: []qserv.ColumnSpec{
					{Name: "readingId", Type: qserv.Integer},
					{Name: "stationId", Type: qserv.Integer},
					{Name: "t", Type: qserv.Double},
					{Name: "value", Type: qserv.Double},
				},
				Director:    "Station",
				DirectorKey: "stationId",
			},
			{
				Name: "SensorKind",
				Kind: qserv.Replicated,
				Columns: []qserv.ColumnSpec{
					{Name: "kindId", Type: qserv.Integer},
					{Name: "kindName", Type: qserv.Text},
				},
			},
		},
	}
}

// synthesize builds a deterministic sensor network: stations uniform
// over the sphere, each with a diurnal temperature-like time series.
func synthesize() (stations, readings, kinds []qserv.Row) {
	rng := rand.New(rand.NewSource(7))
	const nStations = 400
	var readingID int64 = 1
	for id := int64(1); id <= nStations; id++ {
		lon := rng.Float64() * 360
		latDeg := math.Asin(2*rng.Float64()-1) * 180 / math.Pi
		kind := int64(rng.Intn(3))
		stations = append(stations, qserv.Row{id, lon, latDeg, 10 + rng.Float64()*2500, kind})
		n := 5 + rng.Intn(10)
		for k := 0; k < n; k++ {
			t := float64(k) + rng.Float64()
			val := 15 + 10*math.Sin(2*math.Pi*t) + rng.NormFloat64()
			readings = append(readings, qserv.Row{readingID, id, t, val})
			readingID++
		}
	}
	kinds = []qserv.Row{
		{int64(0), "temperature"},
		{int64(1), "pressure"},
		{int64(2), "humidity"},
	}
	return stations, readings, kinds
}

// render canonicalizes rows for oracle comparison.
func render(rows []qserv.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			switch x := v.(type) {
			case float64:
				parts[j] = fmt.Sprintf("%.9g", x)
			default:
				parts[j] = fmt.Sprint(x)
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func main() {
	spec := sensorSpec()
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	stations, readings, kinds := synthesize()

	cfg := qserv.DefaultClusterConfig(4)
	cfg.Database = "sensors"
	cluster, err := qserv.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.CreateTables(spec); err != nil {
		log.Fatal(err)
	}
	// Director first (children are placed by its key), then the rest.
	st, err := cluster.Ingest("Station", qserv.RowsOf(stations))
	if err != nil {
		log.Fatal(err)
	}
	rd, err := cluster.Ingest("Reading", qserv.RowsOf(readings))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.Ingest("SensorKind", qserv.RowsOf(kinds)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d stations over %d chunks (+%d overlap copies) and %d readings in %d fabric batches\n\n",
		st.Rows, st.Chunks, st.OverlapRows, rd.Rows, st.Batches+rd.Batches)

	// The single-node oracle: same spec, same rows, one plain engine.
	oracle, err := qserv.NewOracle(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := oracle.CreateTables(spec); err != nil {
		log.Fatal(err)
	}
	for _, tb := range []struct {
		name string
		rows []qserv.Row
	}{{"Station", stations}, {"Reading", readings}, {"SensorKind", kinds}} {
		if err := oracle.Ingest(tb.name, qserv.RowsOf(tb.rows)); err != nil {
			log.Fatal(err)
		}
	}

	queries := []string{
		"SELECT COUNT(*) AS n FROM Station",
		"SELECT COUNT(*) AS n FROM Reading",
		"SELECT COUNT(*) AS n, AVG(elevation) AS elev FROM Station WHERE qserv_areaspec_box(30, -25, 90, 25)",
		"SELECT kindId, COUNT(*) AS n FROM Station GROUP BY kindId",
		"SELECT AVG(value) AS mean, COUNT(*) AS n FROM Reading WHERE stationId = 123",
		"SELECT stationId, lat FROM Station ORDER BY lat DESC, stationId LIMIT 5",
	}
	for _, sql := range queries {
		got, err := cluster.Query(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		want, err := oracle.Query(sql)
		if err != nil {
			log.Fatalf("oracle %s: %v", sql, err)
		}
		g, w := render(got.Rows), render(want.Rows)
		if len(g) != len(w) {
			log.Fatalf("%s: %d rows, oracle has %d", sql, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				log.Fatalf("%s: row %d differs:\n  cluster: %s\n  oracle:  %s", sql, i, g[i], w[i])
			}
		}
		fmt.Printf("> %s\n", sql)
		for i, r := range got.Rows {
			if i >= 5 {
				fmt.Printf("  ... (%d rows)\n", len(got.Rows))
				break
			}
			fmt.Printf("  %v\n", []any(r))
		}
		fmt.Printf("  [%d chunk queries; oracle-identical]\n\n", got.ChunksDispatched)
	}
	fmt.Println("all answers oracle-identical — the spec API ran a non-LSST catalog through the full distributed path")
}
