// Quickstart: build an 8-worker in-process Qserv cluster, load a
// synthetic partial-sky catalog, and run the paper's basic query shapes
// through the public API — the synchronous Query convenience and the
// asynchronous session form (Submit / Progress / Rows / Wait) the czar
// manages multi-hour scans with.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/datagen"
	"repro/internal/sqlengine"
)

func main() {
	// Synthesize a PT1.1-style patch and duplicate it over a band of
	// sky (paper section 6.1.2).
	cat, err := datagen.Generate(
		datagen.Config{Seed: 1, ObjectsPerPatch: 500, MeanSourcesPerObject: 3},
		datagen.DuplicateConfig{DeclBands: 3, SourceDeclLimit: 54, MaxCopies: 40},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d objects, %d sources\n", len(cat.Objects), len(cat.Sources))

	cluster, err := qserv.NewCluster(qserv.DefaultClusterConfig(8))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Load(cat); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d workers, %d chunks placed\n\n",
		len(cluster.Workers), len(cluster.Placement.Chunks()))

	queries := []string{
		// Point retrieval through the objectId secondary index (LV1).
		"SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = 42",
		// Full-sky count: one chunk query per partition (HV1).
		"SELECT COUNT(*) FROM Object",
		// The paper's section 5.3 rewriting example.
		"SELECT AVG(uFlux_SG) FROM Object WHERE qserv_areaspec_box(0.0, 0.0, 10.0, 10.0) AND uRadius_PS > 0.04",
		// Per-chunk density (HV3).
		"SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId FROM Object GROUP BY chunkId ORDER BY n DESC LIMIT 5",
	}
	for _, sql := range queries {
		res, err := cluster.Query(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		fmt.Printf("> %s\n", sql)
		fmt.Printf("  %d chunk queries, %d bytes of results collected, %v elapsed\n",
			res.ChunksDispatched, res.ResultBytes, res.Elapsed)
		printRows(res.Cols, res.Rows, 5)
		fmt.Println()
	}

	// The session form: submit, stream rows as chunk results merge,
	// then collect the accounting. A long scan streams its first rows
	// hours before it finishes; here it just finishes fast.
	sql := "SELECT objectId, ra_PS, decl_PS FROM Object WHERE uFlux_PS > 2.5e-31"
	q, err := cluster.Submit(context.Background(), sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("> %s  (session %d)\n", sql, q.ID())
	streamed := 0
	it := q.Rows()
	for _, ok := it.Next(); ok; _, ok = it.Next() {
		streamed++
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	res, err := q.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	p := q.Progress()
	fmt.Printf("  streamed %d rows while %d/%d chunks merged; final result %d rows\n",
		streamed, p.ChunksCompleted, p.ChunksTotal, len(res.Rows))
}

func printRows(cols []string, rows []qserv.Row, limit int) {
	fmt.Printf("  %v\n", cols)
	for i, r := range rows {
		if i >= limit {
			fmt.Printf("  ... (%d more rows)\n", len(rows)-limit)
			return
		}
		vals := make([]string, len(r))
		for j, v := range r {
			vals[j] = sqlengine.FormatValue(v)
		}
		fmt.Printf("  %v\n", vals)
	}
}
