// Quickstart: build an 8-worker in-process Qserv cluster, load a
// synthetic partial-sky catalog, and run the paper's basic query shapes
// through the public API.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/datagen"
	"repro/internal/sqlengine"
)

func main() {
	// Synthesize a PT1.1-style patch and duplicate it over a band of
	// sky (paper section 6.1.2).
	cat, err := datagen.Generate(
		datagen.Config{Seed: 1, ObjectsPerPatch: 500, MeanSourcesPerObject: 3},
		datagen.DuplicateConfig{DeclBands: 3, SourceDeclLimit: 54, MaxCopies: 40},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d objects, %d sources\n", len(cat.Objects), len(cat.Sources))

	cluster, err := qserv.NewCluster(qserv.DefaultClusterConfig(8))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Load(cat); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d workers, %d chunks placed\n\n",
		len(cluster.Workers), len(cluster.Placement.Chunks()))

	queries := []string{
		// Point retrieval through the objectId secondary index (LV1).
		"SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = 42",
		// Full-sky count: one chunk query per partition (HV1).
		"SELECT COUNT(*) FROM Object",
		// The paper's section 5.3 rewriting example.
		"SELECT AVG(uFlux_SG) FROM Object WHERE qserv_areaspec_box(0.0, 0.0, 10.0, 10.0) AND uRadius_PS > 0.04",
		// Per-chunk density (HV3).
		"SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId FROM Object GROUP BY chunkId ORDER BY n DESC LIMIT 5",
	}
	for _, sql := range queries {
		res, err := cluster.Query(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		fmt.Printf("> %s\n", sql)
		fmt.Printf("  %d chunk queries, %d bytes of results collected, %v elapsed\n",
			res.ChunksDispatched, res.ResultBytes, res.Elapsed)
		printRows(res.Cols, res.Rows, 5)
		fmt.Println()
	}
}

func printRows(cols []string, rows []sqlengine.Row, limit int) {
	fmt.Printf("  %v\n", cols)
	for i, r := range rows {
		if i >= limit {
			fmt.Printf("  ... (%d more rows)\n", len(rows)-limit)
			return
		}
		vals := make([]string, len(r))
		for j, v := range r {
			vals[j] = sqlengine.FormatValue(v)
		}
		fmt.Printf("  %v\n", vals)
	}
}
