// Driver: connect to a Qserv frontend with Go's standard database/sql
// package. An in-process cluster stands in for a deployed one — the
// same code works against a real `qserv-czar` by pointing the DSN at
// its listen address. The blank import registers the "qserv" driver;
// everything after sql.Open is stock database/sql: placeholders,
// QueryRow, streaming Rows, context cancellation (which kills the
// query server-side, freeing worker scan slots).
package main

import (
	"database/sql"
	"fmt"
	"log"

	"repro"
	_ "repro/driver"
	"repro/internal/datagen"
)

func main() {
	// Stand up a small cluster and serve the SQL frontend on an
	// ephemeral port (protocols v1+v2 on one listener; the driver
	// speaks the streaming v2).
	cat, err := datagen.Generate(
		datagen.Config{Seed: 1, ObjectsPerPatch: 500, MeanSourcesPerObject: 2},
		datagen.DuplicateConfig{DeclBands: 3, MaxCopies: 20},
	)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := qserv.NewCluster(qserv.DefaultClusterConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Load(cat); err != nil {
		log.Fatal(err)
	}
	front, err := cluster.ServeFrontend("127.0.0.1:0", qserv.DefaultFrontendConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()

	// The DSN names the user (the admission-control identity) and the
	// database: qserv://<user>@<host:port>/<db>.
	db, err := sql.Open("qserv", "qserv://astronomer@"+front.Addr()+"/LSST")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Ping(); err != nil {
		log.Fatal(err)
	}

	// A point query with a placeholder (LV1: the objectId index makes
	// this one indexed dive, not a scan).
	var ra, decl float64
	err = db.QueryRow(
		"SELECT ra_PS, decl_PS FROM Object WHERE objectId = ?", 42,
	).Scan(&ra, &decl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("object 42 at ra=%.4f decl=%.4f\n", ra, decl)

	// A scan whose rows stream: rows.Next returns the first row as soon
	// as the first chunk merges, long before the scan finishes.
	rows, err := db.Query(
		"SELECT objectId, ra_PS FROM Object WHERE uFlux_PS > ? ORDER BY ra_PS, objectId LIMIT ?",
		2.5e-31, 5,
	)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id, &ra); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("object %-12d ra=%.4f\n", id, ra)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}

	// Aggregates distribute: the COUNT runs as one chunk query per
	// partition, partials merging at the czar.
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM Object").Scan(&n); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d objects across %d chunks\n", n, len(cluster.Placement.Chunks()))
}
