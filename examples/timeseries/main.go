// Time series: the paper's Low Volume 2 workload — fetch every
// detection of one astronomical object from the Source table, served
// through the MySQL-proxy-equivalent TCP frontend so any client can
// speak to the cluster (section 5.4). Demonstrates the objectId
// secondary index: the czar dispatches to exactly one chunk.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/datagen"
	"repro/internal/proxy"
	"repro/internal/sqlengine"
)

func main() {
	cat, err := datagen.Generate(
		datagen.Config{Seed: 5, ObjectsPerPatch: 400, MeanSourcesPerObject: 8},
		datagen.DuplicateConfig{DeclBands: 1, SourceDeclLimit: 54, MaxCopies: 10},
	)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := qserv.NewCluster(qserv.DefaultClusterConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Load(cat); err != nil {
		log.Fatal(err)
	}

	// Front the czar with the SQL-over-TCP proxy.
	srv, err := proxy.Serve("127.0.0.1:0", cluster.Czar)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	client, err := proxy.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Printf("proxy listening on %s; cluster holds %d sources\n\n", srv.Addr(), len(cat.Sources))

	// Light curve of object 17, in AB magnitudes, ordered by epoch.
	sql := `SELECT taiMidPoint, fluxToAbMag(psfFlux), fluxToAbMag(psfFluxErr), ra, decl
		FROM Source WHERE objectId = 17 ORDER BY taiMidPoint`
	res, err := client.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("> %s\n", sql)
	fmt.Printf("%-12s %-10s %-12s\n", "epoch (MJD)", "mag (AB)", "position")
	for _, row := range res.Rows {
		fmt.Printf("%-12.2f %-10.3f (%.5f, %+.5f)\n",
			row[0].(float64), row[1].(float64), row[3].(float64), row[4].(float64))
	}
	if len(res.Rows) == 0 {
		log.Fatal("object 17 has no detections; re-seed the catalog")
	}

	// The same through the library API, to show the index effect.
	direct, err := cluster.Query("SELECT COUNT(*) FROM Source WHERE objectId = 17")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetections: %s; chunk queries dispatched: %d (index hit exactly one chunk)\n",
		sqlengine.FormatValue(direct.Rows[0][0]), direct.ChunksDispatched)

	// Query management over the same wire (paper section 5): a detached
	// scan session shows up in SHOW PROCESSLIST and dies to KILL.
	scan, err := cluster.Submit(context.Background(),
		"SELECT COUNT(*) AS n FROM Source WHERE psfFlux > 1e-31")
	if err != nil {
		log.Fatal(err)
	}
	pl, err := client.Query("SHOW PROCESSLIST")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSHOW PROCESSLIST: %d in-flight (cols %v)\n", len(pl.Rows), pl.Cols)
	if _, err := client.Query(fmt.Sprintf("KILL %d", scan.ID())); err != nil {
		// The scan may have finished first at this toy scale.
		fmt.Printf("KILL %d: %v\n", scan.ID(), err)
	} else if _, werr := scan.Wait(context.Background()); werr != nil {
		fmt.Printf("KILL %d: session ended with %v\n", scan.ID(), werr)
	}
}
