package qserv

// Differential testing: randomized queries executed both through the
// full distributed pipeline and on the single-node oracle must agree
// exactly. This exercises the whole stack — analysis, chunk-set
// selection, rewriting, aggregate split/merge, dispatch, worker
// execution, dump transfer, and merging — against MySQL-equivalent
// single-node semantics.

import (
	"fmt"
	"math/rand"
	"testing"
)

// randFilter produces a random WHERE conjunction over Object columns.
func randFilter(rng *rand.Rand) string {
	preds := []func() string{
		func() string {
			lo := rng.Float64() * 300
			return fmt.Sprintf("ra_PS BETWEEN %.3f AND %.3f", lo, lo+rng.Float64()*40)
		},
		func() string {
			lo := rng.Float64()*60 - 40
			return fmt.Sprintf("decl_PS BETWEEN %.3f AND %.3f", lo, lo+rng.Float64()*20)
		},
		func() string {
			return fmt.Sprintf("fluxToAbMag(zFlux_PS) < %.1f", 18+rng.Float64()*10)
		},
		func() string {
			return fmt.Sprintf("uRadius_PS > %.3f", rng.Float64()*0.1)
		},
		func() string {
			return fmt.Sprintf("objectId %% %d = 0", 2+rng.Intn(5))
		},
	}
	n := 1 + rng.Intn(3)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " AND "
		}
		out += preds[rng.Intn(len(preds))]()
	}
	return out
}

func TestRandomizedFiltersMatchOracle(t *testing.T) {
	cl, oracle := shared(t)
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 25; i++ {
		sql := "SELECT COUNT(*), SUM(objectId), MIN(ra_PS), MAX(decl_PS) FROM Object WHERE " + randFilter(rng)
		got, err := cl.Query(sql)
		if err != nil {
			t.Fatalf("distributed %q: %v", sql, err)
		}
		want, err := oracle.Query(sql)
		if err != nil {
			t.Fatalf("oracle %q: %v", sql, err)
		}
		sameAnswer(t, got, want, sql)
	}
}

func TestRandomizedGroupBysMatchOracle(t *testing.T) {
	cl, oracle := shared(t)
	rng := rand.New(rand.NewSource(7))
	groupKeys := []string{"chunkId", "FLOOR(decl_PS / 10)", "objectId % 7"}
	for i := 0; i < 12; i++ {
		key := groupKeys[rng.Intn(len(groupKeys))]
		sql := fmt.Sprintf(
			"SELECT %s AS k, COUNT(*) AS n, AVG(ra_PS) FROM Object WHERE %s GROUP BY k",
			key, randFilter(rng))
		got, err := cl.Query(sql)
		if err != nil {
			t.Fatalf("distributed %q: %v", sql, err)
		}
		want, err := oracle.Query(sql)
		if err != nil {
			t.Fatalf("oracle %q: %v", sql, err)
		}
		sameAnswer(t, got, want, sql)
	}
}

func TestRandomizedProjectionsMatchOracle(t *testing.T) {
	cl, oracle := shared(t)
	rng := rand.New(rand.NewSource(31))
	items := []string{
		"objectId", "ra_PS", "decl_PS", "fluxToAbMag(zFlux_PS)",
		"ra_PS + decl_PS", "uFlux_PS * 1e28",
	}
	for i := 0; i < 12; i++ {
		// Pick 1-3 random projection items.
		n := 1 + rng.Intn(3)
		proj := ""
		for k := 0; k < n; k++ {
			if k > 0 {
				proj += ", "
			}
			proj += items[rng.Intn(len(items))] + fmt.Sprintf(" AS c%d", k)
		}
		sql := fmt.Sprintf("SELECT %s FROM Object WHERE %s", proj, randFilter(rng))
		got, err := cl.Query(sql)
		if err != nil {
			t.Fatalf("distributed %q: %v", sql, err)
		}
		want, err := oracle.Query(sql)
		if err != nil {
			t.Fatalf("oracle %q: %v", sql, err)
		}
		sameAnswer(t, got, want, sql)
	}
}

func TestRandomizedPointQueriesMatchOracle(t *testing.T) {
	cl, oracle := shared(t)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		id := rng.Int63n(2000) + 1
		sql := fmt.Sprintf("SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = %d", id)
		got, err := cl.Query(sql)
		if err != nil {
			t.Fatalf("distributed %q: %v", sql, err)
		}
		want, err := oracle.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, got, want, sql)
	}
}

func TestRandomizedNearNeighborMatchesOracle(t *testing.T) {
	cl, oracle := shared(t)
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 4; i++ {
		ra := rng.Float64() * 20
		decl := rng.Float64()*10 - 5
		radius := 0.05 + rng.Float64()*0.3 // always <= 0.5 overlap
		distSQL := fmt.Sprintf(`SELECT count(*) FROM Object o1, Object o2
			WHERE qserv_areaspec_box(%.3f, %.3f, %.3f, %.3f)
			AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < %.4f`,
			ra, decl, ra+4, decl+4, radius)
		oracleSQL := fmt.Sprintf(`SELECT count(*) FROM Object o1, Object o2
			WHERE qserv_ptInSphericalBox(o1.ra_PS, o1.decl_PS, %.3f, %.3f, %.3f, %.3f) = 1
			AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < %.4f`,
			ra, decl, ra+4, decl+4, radius)
		got, err := cl.Query(distSQL)
		if err != nil {
			t.Fatalf("distributed: %v", err)
		}
		want, err := oracle.Query(oracleSQL)
		if err != nil {
			t.Fatal(err)
		}
		g := got.Rows[0][0].(int64)
		w := want.Rows[0][0].(int64)
		if g != w {
			t.Fatalf("radius %.4f box (%.2f,%.2f): distributed %d pairs, oracle %d", radius, ra, decl, g, w)
		}
	}
}
