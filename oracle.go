package qserv

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/meta"
	"repro/internal/partition"
	"repro/internal/sqlengine"
	"repro/internal/sqlparse"
)

// Oracle is a single-node reference database: the same catalog spec and
// row sources ingested into one plain SQL engine, with no partitioning,
// fabric, or merge involved. It is the correctness oracle distributed
// answers are compared against (and the mainstream-RDBMS baseline of
// paper section 3). Build it with the ClusterConfig of the cluster
// under test so chunkId/subChunkId column values agree.
type Oracle struct {
	engine   *sqlengine.Engine
	registry *meta.Registry
	chunker  *partition.Chunker
	index    *meta.ObjectIndex
	ingested map[string]bool
}

// NewOracle builds an empty oracle sharing the cluster configuration's
// partition geometry and database name.
func NewOracle(cfg ClusterConfig) (*Oracle, error) {
	chunker, err := partition.NewChunker(cfg.Partition)
	if err != nil {
		return nil, err
	}
	db := cfg.Database
	if db == "" {
		db = defaultDatabase
	}
	return &Oracle{
		engine:   sqlengine.New(db),
		registry: meta.NewRegistry(db, chunker),
		chunker:  chunker,
		index:    meta.NewObjectIndex(),
		ingested: map[string]bool{},
	}, nil
}

// CreateTables installs a catalog spec, mirroring Cluster.CreateTables.
func (o *Oracle) CreateTables(spec CatalogSpec) error {
	mspec, err := spec.toMeta()
	if err != nil {
		return err
	}
	if mspec.Database == "" {
		mspec.Database = o.registry.DB
	}
	return o.registry.ApplySpec(mspec)
}

// Ingest streams rows into one whole (unpartitioned) table, applying
// the same per-row logic as the cluster — chunkId/subChunkId columns,
// director-key index feed, child placement by director key — so query
// answers over system columns also agree.
func (o *Oracle) Ingest(table string, src RowSource) error {
	info, err := o.registry.Table(table)
	if err != nil {
		return err
	}
	key := strings.ToLower(info.Name)
	if o.ingested[key] {
		return fmt.Errorf("qserv: oracle table %s is already ingested", info.Name)
	}
	if info.Kind == meta.KindChild && !o.ingested[strings.ToLower(info.Director)] {
		return fmt.Errorf("qserv: ingest director table %s before child table %s", info.Director, info.Name)
	}
	o.ingested[key] = true

	db, err := o.engine.Database(o.registry.DB)
	if err != nil {
		return err
	}
	t, err := info.NewIngestTable(info.Name)
	if err != nil {
		return err
	}

	if info.Partitioned {
		placer, err := newRowPlacer(info, o.chunker, o.index)
		if err != nil {
			return err
		}
		for {
			row, ok := src.Next()
			if !ok {
				break
			}
			full, _, _, _, err := placer.place(row)
			if err != nil {
				return err
			}
			if err := t.Insert(full); err != nil {
				return err
			}
		}
	} else {
		n := int64(0)
		for {
			row, ok := src.Next()
			if !ok {
				break
			}
			n++
			if len(row) != len(info.Schema) {
				return fmt.Errorf("qserv: ingest %s row %d: got %d columns, schema has %d",
					info.Name, n, len(row), len(info.Schema))
			}
			if err := t.Insert(sqlengine.Row(row)); err != nil {
				return err
			}
		}
	}
	if err := src.Err(); err != nil {
		return fmt.Errorf("qserv: ingest %s: row source: %w", info.Name, err)
	}
	db.Put(t)
	return nil
}

// Load installs the synthetic LSST catalog — the single-node
// counterpart of Cluster.Load.
func (o *Oracle) Load(cat *Catalog) error {
	if err := o.CreateTables(LSSTSpec()); err != nil {
		return err
	}
	if err := o.Ingest("Object", objectSource(cat)); err != nil {
		return err
	}
	if err := o.Ingest("Source", sourceSource(cat)); err != nil {
		return err
	}
	return o.Ingest("Filter", filterSource())
}

// Query runs one statement against the oracle. It accepts the same
// dialect the cluster does: qserv_areaspec_* pseudo-functions are
// rewritten into the point-in-region UDF predicate (the same rewrite
// the czar applies) before execution.
func (o *Oracle) Query(sql string) (*Result, error) {
	if sel, err := sqlparse.ParseSelect(sql); err == nil {
		if a, aerr := core.Analyze(sel, o.registry); aerr == nil {
			sql = a.Stmt.SQL()
		}
	}
	res, err := o.engine.Query(sql)
	if err != nil {
		return nil, err
	}
	out := &Result{Cols: append([]string(nil), res.Cols...)}
	out.Rows = make([]Row, len(res.Rows))
	for i, r := range res.Rows {
		out.Rows[i] = Row(r)
	}
	return out, nil
}

// ---------- datagen catalog adapters (the deprecated Load path) ----------

// funcSource adapts an index-driven generator to RowSource.
type funcSource struct {
	n    int
	next func(i int) Row
	len  int
}

func (f *funcSource) Next() (Row, bool) {
	if f.n >= f.len {
		return nil, false
	}
	r := f.next(f.n)
	f.n++
	return r, true
}

func (f *funcSource) Err() error { return nil }

func objectSource(cat *Catalog) RowSource {
	return &funcSource{len: len(cat.Objects), next: func(i int) Row {
		return Row(datagen.ObjectUserRow(cat.Objects[i]))
	}}
}

func sourceSource(cat *Catalog) RowSource {
	return &funcSource{len: len(cat.Sources), next: func(i int) Row {
		return Row(datagen.SourceUserRow(cat.Sources[i]))
	}}
}

func filterSource() RowSource {
	rows := datagen.FilterRows()
	return &funcSource{len: len(rows), next: func(i int) Row { return Row(rows[i]) }}
}
