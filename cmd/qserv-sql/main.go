// Command qserv-sql is the interactive SQL client for a qserv-czar
// proxy (the role any MySQL-compatible client plays in the paper):
//
//	qserv-sql -addr 127.0.0.1:7000                      # REPL
//	qserv-sql -addr 127.0.0.1:7000 -e "SELECT COUNT(*) FROM Object"
//
// Besides SQL, the proxy answers the query-management commands of the
// paper's section 5: `SHOW PROCESSLIST;` lists in-flight queries (id,
// czar, scheduling class, age, chunk progress) and `KILL <id>;` cancels
// one — the kill propagates down to the workers' scan lanes. The
// availability subsystem is observable the same way: `SHOW WORKERS;`
// lists per-worker health (alive / suspect / dead, consecutive misses,
// chunk counts) and `SHOW REPAIRS;` the replication manager's progress
// and the placement epoch.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/proxy"
	"repro/internal/sqlengine"
)

var (
	addrFlag  = flag.String("addr", "127.0.0.1:7000", "proxy address")
	queryFlag = flag.String("e", "", "execute one statement and exit")
)

func main() {
	flag.Parse()
	log.SetPrefix("qserv-sql: ")
	client, err := proxy.Dial(*addrFlag)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if *queryFlag != "" {
		run(client, *queryFlag)
		return
	}

	fmt.Println("qserv-sql — type SQL statements terminated by ';', or 'quit'")
	fmt.Println("           (SHOW PROCESSLIST; lists running queries, KILL <id>; cancels one,")
	fmt.Println("            SHOW WORKERS; lists worker health, SHOW REPAIRS; repair progress)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("qserv> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == "quit" || trimmed == "exit" || trimmed == `\q`) {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			sql := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
			buf.Reset()
			if sql != "" {
				run(client, sql)
			}
			fmt.Print("qserv> ")
			continue
		}
		fmt.Print("    -> ")
	}
}

func run(client *proxy.Client, sql string) {
	start := time.Now()
	res, err := client.Query(sql)
	if err != nil {
		fmt.Printf("ERROR: %v\n", err)
		return
	}
	elapsed := time.Since(start)
	widths := make([]int, len(res.Cols))
	for i, c := range res.Cols {
		widths[i] = len(c)
	}
	text := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		text[r] = make([]string, len(row))
		for i, v := range row {
			s := sqlengine.FormatValue(v)
			text[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	sep := "+"
	for _, w := range widths {
		sep += strings.Repeat("-", w+2) + "+"
	}
	fmt.Println(sep)
	fmt.Print("|")
	for i, c := range res.Cols {
		fmt.Printf(" %-*s |", widths[i], c)
	}
	fmt.Println()
	fmt.Println(sep)
	for _, row := range text {
		fmt.Print("|")
		for i, s := range row {
			fmt.Printf(" %-*s |", widths[i], s)
		}
		fmt.Println()
	}
	fmt.Println(sep)
	fmt.Printf("%d row(s) in %v\n", len(res.Rows), elapsed.Round(time.Millisecond))
}
