// Command qserv-sql is the interactive SQL client for a qserv-czar
// frontend (the role any MySQL-compatible client plays in the paper):
//
//	qserv-sql -addr 127.0.0.1:7000                      # REPL
//	qserv-sql -addr 127.0.0.1:7000 -e "SELECT COUNT(*) FROM Object"
//
// It speaks the streaming protocol v2: rows print as the czar's merge
// pipeline produces them — the first rows of a multi-hour scan appear
// immediately — and every statement reports first-row latency
// separately from total latency. Ctrl-C during a statement kills the
// in-flight query server-side (worker scan slots free) without ending
// the session. -v1 falls back to the legacy buffered protocol.
//
// Besides SQL, the frontend answers the query-management commands of
// the paper's section 5: `SHOW PROCESSLIST;` lists in-flight queries
// (id, czar, scheduling class, age, chunk progress) and `KILL <id>;`
// cancels one — the kill propagates down to the workers' scan lanes.
// The availability subsystem is observable the same way: `SHOW
// WORKERS;` lists per-worker health (alive / suspect / dead,
// consecutive misses, chunk counts) and `SHOW REPAIRS;` the
// replication manager's progress and the placement epoch; `SHOW
// FRONTEND;` reports admission-control pressure (active/queued/shed
// sessions); `SHOW CACHE;` the czar result cache's counters (hits,
// misses, bytes, evictions, stamp invalidations).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/frontend"
	"repro/internal/proxy"
	"repro/internal/sqlengine"
	"repro/internal/telemetry"
)

var (
	addrFlag  = flag.String("addr", "127.0.0.1:7000", "frontend address")
	queryFlag = flag.String("e", "", "execute one statement and exit")
	userFlag  = flag.String("user", "anonymous", "user identity for admission control")
	dbFlag    = flag.String("db", "LSST", "database name")
	v1Flag    = flag.Bool("v1", false, "use the legacy buffered v1 protocol")
)

// logger emits the client's structured failures (dial errors).
var logger = telemetry.NewLogger("qserv-sql")

func main() {
	flag.Parse()

	var run func(sql string)
	if *v1Flag {
		client, err := proxy.Dial(*addrFlag)
		if err != nil {
			logger.Error("dial", "addr", *addrFlag, "err", err)
			os.Exit(1)
		}
		defer client.Close()
		run = func(sql string) { runV1(client, sql) }
	} else {
		client, err := frontend.Dial(*addrFlag, *userFlag, *dbFlag)
		if err != nil {
			logger.Error("dial", "addr", *addrFlag, "err", err)
			os.Exit(1)
		}
		defer client.Close()
		run = func(sql string) { runV2(client, sql) }
	}

	if *queryFlag != "" {
		run(*queryFlag)
		return
	}

	fmt.Println("qserv-sql — type SQL statements terminated by ';', or 'quit'")
	fmt.Println("           (SHOW PROCESSLIST; lists running queries, KILL <id>; cancels one,")
	fmt.Println("            SHOW WORKERS; worker health, SHOW REPAIRS; repair progress,")
	fmt.Println("            SHOW FRONTEND; admission-control pressure, SHOW CACHE; result cache,")
	fmt.Println("            SHOW METRICS; Prometheus exposition, SHOW PROFILE [<id>]; retained traces,")
	fmt.Println("            EXPLAIN ANALYZE <stmt>; runs the statement and prints its span tree)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("qserv> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == "quit" || trimmed == "exit" || trimmed == `\q`) {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			sql := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
			buf.Reset()
			if sql != "" {
				run(sql)
			}
			fmt.Print("qserv> ")
			continue
		}
		fmt.Print("    -> ")
	}
}

// runV2 streams one statement: rows print as they arrive, Ctrl-C kills
// the in-flight query (not the session), and the summary separates
// first-row latency from total latency.
func runV2(client *frontend.Client, sql string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	st, err := client.Query(ctx, sql)
	if err != nil {
		fmt.Printf("ERROR: %v\n", err)
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, strings.Join(st.Cols(), "\t"))
	fmt.Fprintln(w, strings.Repeat("-", 8*len(st.Cols())))

	var rows int64
	var firstRow time.Duration
	cells := make([]string, len(st.Cols()))
	for {
		row, ok := st.Next()
		if !ok {
			break
		}
		if rows == 0 {
			firstRow = time.Since(start)
		}
		rows++
		for i, v := range row {
			cells[i] = sqlengine.FormatValue(v)
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
		if rows%1024 == 0 {
			w.Flush() // keep the terminal live on long streams
		}
	}
	w.Flush()
	total := time.Since(start)
	if err := st.Err(); err != nil {
		fmt.Printf("ERROR after %d row(s): %v\n", rows, err)
		return
	}
	if rows == 0 {
		fmt.Printf("0 row(s) in %v%s\n", total.Round(time.Millisecond), statsFooter(st.Stats()))
		return
	}
	fmt.Printf("%d row(s); first row in %v, total %v%s\n",
		rows, firstRow.Round(time.Millisecond), total.Round(time.Millisecond), statsFooter(st.Stats()))
}

// statsFooter renders the per-statement accounting the Done frame
// carries (empty against servers that predate the trailer stats, and
// for admin commands, which never touch a worker).
func statsFooter(st frontend.DoneStats) string {
	if st.ElapsedNS == 0 && st.Chunks == 0 && st.BytesMerged == 0 {
		return ""
	}
	return fmt.Sprintf(" (czar %v, %d chunk(s), %s merged)",
		time.Duration(st.ElapsedNS).Round(time.Microsecond), st.Chunks, formatBytes(st.BytesMerged))
}

// formatBytes renders a byte count with a binary-unit suffix.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// runV1 is the legacy buffered path: the full result must arrive
// before anything prints (no first-row latency to report — it equals
// the total by construction).
func runV1(client *proxy.Client, sql string) {
	start := time.Now()
	res, err := client.Query(sql)
	if err != nil {
		fmt.Printf("ERROR: %v\n", err)
		return
	}
	elapsed := time.Since(start)
	widths := make([]int, len(res.Cols))
	for i, c := range res.Cols {
		widths[i] = len(c)
	}
	text := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		text[r] = make([]string, len(row))
		for i, v := range row {
			s := sqlengine.FormatValue(v)
			text[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	sep := "+"
	for _, w := range widths {
		sep += strings.Repeat("-", w+2) + "+"
	}
	fmt.Println(sep)
	fmt.Print("|")
	for i, c := range res.Cols {
		fmt.Printf(" %-*s |", widths[i], c)
	}
	fmt.Println()
	fmt.Println(sep)
	for _, row := range text {
		fmt.Print("|")
		for i, s := range row {
			fmt.Printf(" %-*s |", widths[i], s)
		}
		fmt.Println()
	}
	fmt.Println(sep)
	fmt.Printf("%d row(s) in %v\n", len(res.Rows), elapsed.Round(time.Millisecond))
}
