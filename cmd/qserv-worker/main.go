// Command qserv-worker runs one Qserv worker as a network data server:
// it deterministically synthesizes the shared catalog, loads the chunks
// the cluster layout assigns to it (plus overlap and replicated
// tables), and serves the two xrd file transactions over TCP.
//
//	qserv-worker -name w0 -addr 127.0.0.1:7001 -peers w0,w1,w2 -seed 1
//
// Every worker and the czar must use identical -seed/-objects/-bands/
// -copies/-peers values so their layouts agree.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/deploy"
	"repro/internal/telemetry"
	"repro/internal/worker"
	"repro/internal/xrd"
)

var (
	nameFlag        = flag.String("name", "w0", "this worker's cluster name")
	addrFlag        = flag.String("addr", "127.0.0.1:7001", "listen address")
	peersFlag       = flag.String("peers", "w0", "comma-separated names of ALL workers (order-insensitive)")
	seedFlag        = flag.Int64("seed", 1, "catalog seed")
	objectsFlag     = flag.Int("objects", 400, "objects per patch")
	sourcesFlag     = flag.Float64("sources", 3, "mean sources per object")
	bandsFlag       = flag.Int("bands", 2, "declination bands to duplicate")
	copiesFlag      = flag.Int("copies", 30, "max patch copies (0 = unlimited)")
	slotsFlag       = flag.Int("slots", 4, "parallel scan-class chunk queries (paper: 4)")
	interactiveFlag = flag.Int("interactive-slots", 2, "dedicated interactive-class slots")
	sharedScansFlag = flag.Bool("shared-scans", true, "convoy concurrent full scans over one read")
	pieceRowsFlag   = flag.Int("scan-piece-rows", 4096, "rows per shared-scan piece")
	dataDirFlag     = flag.String("data-dir", "", "durable chunk store directory (empty = in-memory only); a restart recovers chunk tables from it instead of re-synthesizing")
	memBudgetFlag   = flag.Int64("mem-budget", 0, "resident chunk-table byte budget; above it cold chunks are evicted to the data dir and re-materialized on first touch (0 = unbudgeted, requires -data-dir)")
	adminFlag       = flag.String("admin-addr", "", "admin HTTP listen address serving /metrics and /debug/pprof/ (empty = disabled)")
)

// logger emits the daemon's lifecycle events; fatal startup failures go
// through fatal() so they render in the same structured format.
var logger = telemetry.NewLogger("qserv-worker")

func fatal(event string, err error) {
	logger.Error(event, "err", err)
	os.Exit(1)
}

func main() {
	flag.Parse()

	spec := deploy.CatalogSpec{
		Seed: *seedFlag, Objects: *objectsFlag, Sources: *sourcesFlag,
		Bands: *bandsFlag, Copies: *copiesFlag,
	}
	cat, err := spec.Build()
	if err != nil {
		fatal("catalog.build", err)
	}
	names := strings.Split(*peersFlag, ",")
	layout, err := deploy.ComputeLayout(cat, names)
	if err != nil {
		fatal("layout.compute", err)
	}

	reg := telemetry.NewRegistry()
	wcfg := worker.DefaultConfig(*nameFlag)
	wcfg.Slots = *slotsFlag
	wcfg.InteractiveSlots = *interactiveFlag
	wcfg.SharedScans = *sharedScansFlag
	wcfg.ScanPieceRows = *pieceRowsFlag
	wcfg.DataDir = *dataDirFlag
	wcfg.MemoryBudgetBytes = *memBudgetFlag
	wcfg.Metrics = reg
	wcfg.Trace = true
	if *memBudgetFlag > 0 && *dataDirFlag == "" {
		fatal("config.mem_budget", fmt.Errorf("-mem-budget needs -data-dir: a budget pages against the durable store"))
	}
	w, err := worker.New(wcfg, layout.Registry)
	if err != nil {
		fatal("worker.new", err)
	}
	defer w.Close()

	objInfo, err := layout.Registry.Table("Object")
	if err != nil {
		fatal("catalog.table", err)
	}
	srcInfo, err := layout.Registry.Table("Source")
	if err != nil {
		fatal("catalog.table", err)
	}
	// Chunks recovered from the durable store skip the synthesize-and-load
	// pass: that is the restart speedup the store exists for.
	recovered := map[int]bool{}
	for _, c := range w.Chunks() {
		recovered[int(c)] = true
	}
	mine := layout.Placement.ChunksOn(*nameFlag)
	if len(mine) == 0 {
		fatal("config.name", fmt.Errorf("no chunks assigned to %q; is -name in -peers?", *nameFlag))
	}
	loaded := 0
	for _, c := range mine {
		if recovered[int(c)] {
			continue
		}
		if err := w.LoadChunk(objInfo, c, layout.ObjRows[c], layout.ObjOverlap[c]); err != nil {
			fatal("chunk.load", err)
		}
		if err := w.LoadChunk(srcInfo, c, layout.SrcRows[c], layout.SrcOverlap[c]); err != nil {
			fatal("chunk.load", err)
		}
		loaded++
	}
	if n := len(mine) - loaded; n > 0 {
		fmt.Printf("worker %s recovered %d chunks from %s\n", *nameFlag, n, *dataDirFlag)
	}

	if *adminFlag != "" {
		admin, err := telemetry.ServeAdmin(*adminFlag, reg)
		if err != nil {
			fatal("admin.listen", err)
		}
		defer admin.Close()
		fmt.Printf("admin HTTP on http://%s (/metrics, /debug/pprof/)\n", admin.Addr())
	}

	srv, err := xrd.Serve(*addrFlag, w)
	if err != nil {
		fatal("xrd.listen", err)
	}
	defer srv.Close()
	fmt.Printf("worker %s serving %d chunks on %s\n", *nameFlag, len(mine), srv.Addr())
	logger.Info("worker.ready", "name", *nameFlag, "chunks", len(mine), "addr", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down")
}
