// Command qserv-bench regenerates every table and figure of the paper's
// evaluation (section 6) plus the ablations listed in DESIGN.md.
//
// Real chunk queries run on real (scaled-down) synthetic data through
// the full planner/worker pipeline; reported times are virtual seconds
// from the calibrated cost model at the paper's 150-node scale (see
// internal/simcluster). Shapes — who wins, what grows, where queues
// form — come from actual executions.
//
// Usage:
//
//	qserv-bench -exp all
//	qserv-bench -exp lv1 -objects 100
//	qserv-bench -list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	qserv "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/htm"
	"repro/internal/partition"
	"repro/internal/scanshare"
	"repro/internal/simcluster"
	"repro/internal/sphgeom"
	"repro/internal/sqlengine"
	"repro/internal/sqlparse"
	"repro/internal/telemetry"
)

var (
	expFlag     = flag.String("exp", "all", "experiment id or 'all'")
	listFlag    = flag.Bool("list", false, "list experiment ids")
	objectsFlag = flag.Int("objects", 60, "synthetic objects per PT1.1 patch")
	seedFlag    = flag.Int64("seed", 1, "data generation seed")
	jsonFlag    = flag.String("json", "", "write machine-readable benchmark records to this JSON path")
)

type experiment struct {
	id, title string
	run       func(ctx *benchCtx) error
}

// benchGate is one hard-gate verdict inside an experiment's JSON record.
type benchGate struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// benchRecord is one experiment's machine-readable outcome (-json).
type benchRecord struct {
	Experiment string             `json:"experiment"`
	Title      string             `json:"title"`
	OK         bool               `json:"ok"`
	Error      string             `json:"error,omitempty"`
	Seconds    float64            `json:"seconds"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Gates      []benchGate        `json:"gates,omitempty"`
}

// benchCtx lazily shares the expensive simulated cluster between
// experiments, and carries the JSON record of the experiment currently
// running (nil without -json).
type benchCtx struct {
	once sync.Once
	cl   *simcluster.Cluster
	err  error

	cur *benchRecord
}

// metric records one named measurement into the running experiment's
// JSON record; a no-op without -json.
func (c *benchCtx) metric(name string, v float64) {
	if c.cur == nil {
		return
	}
	if c.cur.Metrics == nil {
		c.cur.Metrics = map[string]float64{}
	}
	c.cur.Metrics[name] = v
}

// gate records one hard-gate verdict into the running experiment's
// JSON record; a no-op without -json.
func (c *benchCtx) gate(name string, pass bool, detail string) {
	if c.cur == nil {
		return
	}
	c.cur.Gates = append(c.cur.Gates, benchGate{Name: name, Pass: pass, Detail: detail})
}

func (c *benchCtx) cluster() (*simcluster.Cluster, error) {
	c.once.Do(func() {
		fmt.Printf("# building 150-node simulated cluster (paper geometry, %d objects/patch)...\n", *objectsFlag)
		cat, err := datagen.Generate(
			datagen.Config{Seed: *seedFlag, ObjectsPerPatch: *objectsFlag, MeanSourcesPerObject: 2},
			datagen.DefaultDuplicateConfig(),
		)
		if err != nil {
			c.err = err
			return
		}
		c.cl, c.err = simcluster.New(simcluster.PaperConfig(), cat)
		if c.err == nil {
			fmt.Printf("# loaded: %d objects, %d sources, %d chunks on 150 nodes\n\n",
				len(cat.Objects), len(cat.Sources), len(c.cl.PlacedChunks()))
		}
	})
	return c.cl, c.err
}

func main() {
	flag.Parse()
	exps := experiments()
	if *listFlag {
		for _, e := range exps {
			fmt.Printf("%-18s %s\n", e.id, e.title)
		}
		return
	}
	ctx := &benchCtx{}
	var records []benchRecord
	ran := false
	for _, e := range exps {
		if *expFlag != "all" && e.id != *expFlag {
			continue
		}
		ran = true
		fmt.Printf("==== %s — %s ====\n", e.id, e.title)
		rec := benchRecord{Experiment: e.id, Title: e.title}
		if *jsonFlag != "" {
			ctx.cur = &rec
		}
		t0 := time.Now()
		err := e.run(ctx)
		rec.Seconds = time.Since(t0).Seconds()
		rec.OK = err == nil
		ctx.cur = nil
		if err != nil {
			rec.Error = err.Error()
		}
		records = append(records, rec)
		if err != nil {
			// Hard-gate failure: flush the records gathered so far so CI
			// artifacts still show what ran, then fail the process.
			writeJSON(records)
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *expFlag)
		os.Exit(1)
	}
	writeJSON(records)
}

// benchEnvelope is the -json file format: the generation parameters
// pinned alongside the records so a record is comparable across runs.
type benchEnvelope struct {
	Schema    int           `json:"schema"`
	Generated string        `json:"generated"`
	Objects   int           `json:"objects"`
	Seed      int64         `json:"seed"`
	Records   []benchRecord `json:"records"`
}

// writeJSON renders the run's records to -json; a no-op without the
// flag. An existing file with the same schema is merged into — records
// from earlier invocations survive, same-experiment records are
// replaced — so `make bench-smoke` can accrete one artifact across
// its per-experiment runs.
func writeJSON(records []benchRecord) {
	if *jsonFlag == "" {
		return
	}
	if prev, err := os.ReadFile(*jsonFlag); err == nil {
		var old benchEnvelope
		if json.Unmarshal(prev, &old) == nil && old.Schema == 1 {
			fresh := make(map[string]bool, len(records))
			for _, r := range records {
				fresh[r.Experiment] = true
			}
			var kept []benchRecord
			for _, r := range old.Records {
				if !fresh[r.Experiment] {
					kept = append(kept, r)
				}
			}
			records = append(kept, records...)
		}
	}
	out := benchEnvelope{
		Schema:    1,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Objects:   *objectsFlag,
		Seed:      *seedFlag,
		Records:   records,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal -json records: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*jsonFlag, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *jsonFlag, err)
		os.Exit(1)
	}
	fmt.Printf("# wrote %d record(s) to %s\n", len(records), *jsonFlag)
}

func experiments() []experiment {
	return []experiment{
		{"table1", "Table 1: key catalog tables of the final data release", runTable1},
		{"lv1", "Figure 2: Low Volume 1 (object retrieval by objectId)", mkLV(1, "~4 s flat")},
		{"lv2", "Figure 3: Low Volume 2 (time series from Source)", mkLV(2, "~4 s flat")},
		{"lv3", "Figure 4: Low Volume 3 (spatially-restricted filter)", mkLV(3, "~4 s flat")},
		{"hv1", "Figure 5: High Volume 1 (full-sky COUNT(*))", mkHV(1, "20-30 s, dispatch-dominated")},
		{"hv2", "Figure 6: High Volume 2 (full-sky filter scan)", mkHV(2, "150-180 s cached, ~420 s uncached")},
		{"hv3", "Figure 7: High Volume 3 (density GROUP BY chunkId)", mkHV(3, "faster than HV2 (small results)")},
		{"shv1", "SHV1 (section 6.2): near-neighbor self-join, 100 deg^2", runSHV1},
		{"shv2", "SHV2 (section 6.2): sources-not-near-objects join, 150 deg^2", runSHV2},
		{"scale-lv", "Figures 8-10: LV weak scaling over 40/100/150 nodes", runScaleLV},
		{"scale-hv", "Figure 11: HV weak scaling over 40/100/150 nodes", runScaleHV},
		{"scale-shv", "Figures 12-13: SHV weak scaling over 40/100/150 nodes", runScaleSHV},
		{"concurrency", "Figure 14: 2xHV2 + LV1 stream + LV2 stream", runConcurrency},
		{"ablate-hash", "A1: spatial vs hash partitioning for the near-neighbor join", runAblateHash},
		{"ablate-subchunk", "A2: subchunked O(kn) vs naive O(n^2) join", runAblateSubchunk},
		{"ablate-overlap", "A3: overlap completeness for cross-border pairs", runAblateOverlap},
		{"ablate-scanshare", "A4: shared scanning vs independent scans", runAblateScanshare},
		{"ablate-scanshare-live", "A4b: shared scans + two-class scheduler on the live worker path", runAblateScanshareLive},
		{"merge-pipeline", "A6: streaming parallel merge + top-K pushdown at the czar", runMergePipeline},
		{"kill-latency", "A8: Cancel() to worker-slot reclamation on the live path", runKillLatency},
		{"frontend", "A13: connection-scale frontend — streaming v2, 1k-conn storm, admission shedding", runFrontendBench},
		{"ingest", "A9: parallel fabric-routed ingest vs serialized shipping", runIngestBench},
		{"failover", "A10: worker death under load — detect, fail over, self-heal replication", runFailover},
		{"restart", "A11: durable chunk store — restart-to-serving vs re-replication", runRestart},
		{"paging", "A12: larger-than-RAM workers — lazy materialization + eviction under a memory budget", runPaging},
		{"pointquery", "A14: point-query fast path — index dives, result cache, ingest invalidation", runPointQuery},
		{"telemetry", "A15: cluster-wide telemetry — tracing overhead, EXPLAIN ANALYZE, /metrics exposition", runTelemetry},
		{"ablate-index", "A5: objectId index vs full scan for point queries", runAblateIndex},
		{"ablate-htm", "A7: HTM vs RA/decl box partition area variation", runAblateHTM},
	}
}

func runTable1(ctx *benchCtx) error {
	chunker, err := partition.NewChunker(partition.PaperConfig())
	if err != nil {
		return err
	}
	reg := datagen.LSSTRegistry(chunker)
	fmt.Printf("%-14s %14s %10s %12s %12s\n", "table", "# rows", "row size", "footprint", "paper")
	paper := map[string]string{"Object": "48TB", "Source": "1.3PB", "ForcedSource": "620TB"}
	for _, name := range []string{"Object", "Source", "ForcedSource"} {
		info, err := reg.Table(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %14.3g %9dB %11.3gTB %12s\n",
			name, float64(info.PaperRows), info.PaperRowBytes,
			float64(info.FootprintBytes())/1e12, paper[name])
	}
	return nil
}

func mkLV(kind int, paperNote string) func(*benchCtx) error {
	return func(ctx *benchCtx) error {
		cl, err := ctx.cluster()
		if err != nil {
			return err
		}
		series, err := cl.LVSeries(kind, 20, 42)
		if err != nil {
			return err
		}
		fmt.Printf("paper: %s\n", paperNote)
		fmt.Printf("%-12s %s\n", "execution", "virtual seconds")
		for i, v := range series {
			fmt.Printf("%-12d %.2f\n", i+1, v)
		}
		fmt.Printf("mean: %.2f s\n", mean(series))
		return nil
	}
}

func mkHV(kind int, paperNote string) func(*benchCtx) error {
	return func(ctx *benchCtx) error {
		cl, err := ctx.cluster()
		if err != nil {
			return err
		}
		fmt.Printf("paper: %s\n", paperNote)
		for run := 1; run <= 3; run++ {
			t, err := cl.HVTime(kind)
			if err != nil {
				return err
			}
			fmt.Printf("run %d: %.1f s  (%d chunks, %d result rows)\n",
				run, t.Elapsed, t.Chunks, t.Rows)
		}
		return nil
	}
}

func runSHV1(ctx *benchCtx) error {
	cl, err := ctx.cluster()
	if err != nil {
		return err
	}
	fmt.Println("paper: 667.19 s and 660.25 s over two random 100 deg^2 regions")
	for i, seed := range []int64{3, 11} {
		t, err := cl.SHVTime(1, 100, seed)
		if err != nil {
			return err
		}
		fmt.Printf("region %d: %.1f s  (%d chunks, %d local pairs)\n", i+1, t.Elapsed, t.Chunks, t.Rows)
	}
	return nil
}

func runSHV2(ctx *benchCtx) error {
	cl, err := ctx.cluster()
	if err != nil {
		return err
	}
	fmt.Println("paper: 5:20:38, 2:06:56, 2:41:03 over three random 150 deg^2 regions")
	for i, seed := range []int64{5, 13, 21} {
		t, err := cl.SHVTime(2, 150, seed)
		if err != nil {
			return err
		}
		fmt.Printf("region %d: %.0f s (%.2f h)  (%d chunks)\n", i+1, t.Elapsed, t.Elapsed/3600, t.Chunks)
	}
	return nil
}

var scaleNodes = []int{40, 100, 150}

func runScaleLV(ctx *benchCtx) error {
	cl, err := ctx.cluster()
	if err != nil {
		return err
	}
	fmt.Println("paper: flat ~4 s at every node count (Figures 8-10)")
	fmt.Printf("%-8s %8s %8s %8s\n", "class", "40", "100", "150")
	for _, class := range []string{"LV1", "LV2", "LV3"} {
		fmt.Printf("%-8s", class)
		for _, n := range scaleNodes {
			v, err := cl.WeakScalingPoint(class, n, 3, 17)
			if err != nil {
				return err
			}
			fmt.Printf(" %7.2fs", v)
		}
		fmt.Println()
	}
	return nil
}

func runScaleHV(ctx *benchCtx) error {
	cl, err := ctx.cluster()
	if err != nil {
		return err
	}
	fmt.Println("paper: HV1/HV3 grow ~linearly with chunk count; HV2 ~flat (Figure 11)")
	fmt.Printf("%-8s %8s %8s %8s\n", "class", "40", "100", "150")
	for _, class := range []string{"HV1", "HV2", "HV3"} {
		fmt.Printf("%-8s", class)
		for _, n := range scaleNodes {
			v, err := cl.WeakScalingPoint(class, n, 1, 17)
			if err != nil {
				return err
			}
			fmt.Printf(" %7.1fs", v)
		}
		fmt.Println()
	}
	return nil
}

func runScaleSHV(ctx *benchCtx) error {
	cl, err := ctx.cluster()
	if err != nil {
		return err
	}
	fmt.Println("paper: imperfect scaling, non-monotonic at 100 nodes (Figures 12-13)")
	fmt.Printf("%-8s %9s %9s %9s\n", "class", "40", "100", "150")
	for _, class := range []string{"SHV1", "SHV2"} {
		fmt.Printf("%-8s", class)
		for _, n := range scaleNodes {
			v, err := cl.WeakScalingPoint(class, n, 1, 23)
			if err != nil {
				return err
			}
			fmt.Printf(" %8.0fs", v)
		}
		fmt.Println()
	}
	return nil
}

func runConcurrency(ctx *benchCtx) error {
	cl, err := ctx.cluster()
	if err != nil {
		return err
	}
	scObj, err := cl.ScaleFor("Object", true)
	if err != nil {
		return err
	}
	scSrc, err := cl.ScaleFor("Source", true)
	if err != nil {
		return err
	}
	ids := cl.SampleObjectIDs(8)
	if len(ids) < 8 {
		return fmt.Errorf("not enough sampled ids")
	}
	hv2 := simcluster.StreamQuery{
		SQL:   "SELECT objectId, ra_PS, decl_PS, uFlux_PS, gFlux_PS, rFlux_PS, iFlux_PS, zFlux_PS, yFlux_PS FROM Object WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 0.5",
		Scale: scObj, Label: "HV2",
	}
	lv1 := func(id int64) simcluster.StreamQuery {
		return simcluster.StreamQuery{SQL: fmt.Sprintf("SELECT * FROM Object WHERE objectId = %d", id),
			Scale: scObj, Label: "LV1"}
	}
	lv2 := func(id int64) simcluster.StreamQuery {
		return simcluster.StreamQuery{SQL: fmt.Sprintf(
			"SELECT taiMidPoint, fluxToAbMag(psfFlux), fluxToAbMag(psfFluxErr), ra, decl FROM Source WHERE objectId = %d", id),
			Scale: scSrc, Label: "LV2"}
	}
	solo, err := cl.Run([]simcluster.QuerySpec{{SQL: hv2.SQL, Scale: scObj, Label: "HV2-solo"}})
	if err != nil {
		return err
	}
	streams := [][]simcluster.StreamQuery{
		{hv2},
		{hv2},
		{lv1(ids[0]), lv1(ids[1]), lv1(ids[2]), lv1(ids[3])},
		{lv2(ids[4]), lv2(ids[5]), lv2(ids[6]), lv2(ids[7])},
	}
	timings, err := cl.RunStreams(streams, 1.0)
	if err != nil {
		return err
	}
	fmt.Printf("paper: concurrent HV2 ~2x solo (5:53 vs 2.5-3 min); LV queries stuck in FIFO queues\n")
	fmt.Printf("HV2 solo: %.1f s\n", solo[0].Elapsed)
	names := []string{"HV2 stream A", "HV2 stream B", "LV1 stream", "LV2 stream"}
	for si, st := range timings {
		fmt.Printf("%-13s", names[si])
		for _, q := range st {
			fmt.Printf("  [%.0f..%.0f]=%.1fs", q.Arrival, q.End, q.Elapsed)
		}
		fmt.Println()
	}
	fmt.Printf("HV2 concurrent/solo ratios: %.2fx, %.2fx\n",
		timings[0][0].Elapsed/solo[0].Elapsed, timings[1][0].Elapsed/solo[0].Elapsed)
	return nil
}

// ---------- ablations ----------

func ablationRows(n int, seed int64) []baseline.PointRow {
	patch, _ := datagen.GeneratePatch(datagen.Config{Seed: seed, ObjectsPerPatch: n, MeanSourcesPerObject: 0})
	full := datagen.Duplicate(patch, datagen.DuplicateConfig{DeclBands: 3, MaxCopies: 60})
	rows := make([]baseline.PointRow, len(full.Objects))
	for i, o := range full.Objects {
		rows[i] = baseline.PointRow{ID: o.ObjectID, RA: o.RA, Decl: o.Decl}
	}
	return rows
}

func runAblateHash(ctx *benchCtx) error {
	rows := ablationRows(60, 2)
	const shards = 20
	hashCost, err := baseline.ShardedJoinCost(baseline.HashShards(rows, shards), 0.2, 1.0, false)
	if err != nil {
		return err
	}
	spatialCost, err := baseline.ShardedJoinCost(baseline.SpatialShards(rows, shards), 0.2, 1.0, true)
	if err != nil {
		return err
	}
	fmt.Printf("claim (section 4.4): hash partitioning eliminates spatial optimizations\n")
	fmt.Printf("near-neighbor pair evaluations over %d rows, %d shards:\n", len(rows), shards)
	fmt.Printf("  hash partitioning:    %d\n", hashCost)
	fmt.Printf("  spatial partitioning: %d  (%.1fx fewer)\n", spatialCost, float64(hashCost)/float64(spatialCost))
	return nil
}

func runAblateSubchunk(ctx *benchCtx) error {
	rows := ablationRows(80, 3)
	radius := 0.2
	pairsNaive, evalNaive := baseline.NaiveNearNeighborCount(rows, radius)
	pairsGrid, evalGrid, err := baseline.GridNearNeighborCount(rows, radius, 0.5)
	if err != nil {
		return err
	}
	if pairsNaive != pairsGrid {
		return fmt.Errorf("answers diverge: %d vs %d", pairsNaive, pairsGrid)
	}
	fmt.Printf("claim (section 4.4): subchunks turn O(n^2) into O(kn)\n")
	fmt.Printf("rows=%d radius=%.2f: pairs found=%d (identical)\n", len(rows), radius, pairsNaive)
	fmt.Printf("  naive evaluations:      %d\n", evalNaive)
	fmt.Printf("  subchunked evaluations: %d  (%.1fx fewer)\n", evalGrid, float64(evalNaive)/float64(evalGrid))
	return nil
}

func runAblateOverlap(ctx *benchCtx) error {
	// Strict partitioning loses cross-border pairs; overlap restores
	// them. Count pairs with and without the overlap margin.
	rows := ablationRows(80, 4)
	radius := 0.2
	want, _ := baseline.NaiveNearNeighborCount(rows, radius)
	// "No overlap": grid join where each point only sees its own cell.
	type key struct{ x, y int }
	cell := 0.5
	grid := map[key][]baseline.PointRow{}
	for _, r := range rows {
		k := key{int(r.RA / cell), int((r.Decl + 90) / cell)}
		grid[k] = append(grid[k], r)
	}
	var strict int64
	for _, members := range grid {
		for _, a := range members {
			for _, b := range members {
				if sphgeom.AngSepDeg(a.RA, a.Decl, b.RA, b.Decl) < radius {
					strict++
				}
			}
		}
	}
	fmt.Printf("claim (section 4.4): strict partitioning loses nearby cross-border pairs\n")
	fmt.Printf("  true pairs:             %d\n", want)
	fmt.Printf("  strict partitioning:    %d  (lost %d)\n", strict, want-strict)
	withOverlap, _, err := baseline.GridNearNeighborCount(rows, radius, cell)
	if err != nil {
		return err
	}
	fmt.Printf("  with overlap:           %d  (lost %d)\n", withOverlap, want-withOverlap)
	return nil
}

func runAblateScanshare(ctx *benchCtx) error {
	tbl := sqlengine.NewTable("T", sqlengine.Schema{
		{Name: "id", Type: sqlparse.TypeInt}, {Name: "x", Type: sqlparse.TypeFloat},
	})
	var rows []sqlengine.Row
	for i := 0; i < 50000; i++ {
		rows = append(rows, sqlengine.Row{int64(i), float64(i)})
	}
	if err := tbl.Insert(rows...); err != nil {
		return err
	}
	const k = 10
	s, err := scanshare.NewScanner(tbl, 512)
	if err != nil {
		return err
	}
	tickets := make([]*scanshare.Ticket, k)
	for i := 0; i < k; i++ {
		tickets[i] = s.Attach(func([]sqlengine.Row) {})
	}
	for _, tk := range tickets {
		tk.Wait()
	}
	shared := s.BytesRead()
	independent := scanshare.IndependentScanBytes(tbl, k)
	fmt.Printf("claim (section 4.3): k concurrent scans share ~one physical pass\n")
	fmt.Printf("  %d concurrent full scans, table %d bytes:\n", k, tbl.ByteSize())
	fmt.Printf("  independent I/O: %d bytes\n", independent)
	fmt.Printf("  shared I/O:      %d bytes  (%.1fx less)\n", shared, float64(independent)/float64(shared))
	return nil
}

// runAblateScanshareLive drives shared scanning through the real
// cluster path (czar -> xrd -> two-class worker scheduler), unlike A4's
// standalone scanner demo: K concurrent full-scan queries convoy over
// the same chunk tables while an interactive objectId stream rides the
// dedicated interactive slots.
func runAblateScanshareLive(ctx *benchCtx) error {
	cat, err := datagen.Generate(
		datagen.Config{Seed: *seedFlag, ObjectsPerPatch: 900, MeanSourcesPerObject: 0},
		datagen.DuplicateConfig{DeclBands: 3, MaxCopies: 20},
	)
	if err != nil {
		return err
	}
	cfg := qserv.DefaultClusterConfig(2)
	cfg.WorkerSlots = 2 // a scan-lane backlog makes gangs coalesce
	cfg.ScanPieceRows = 128
	cl, err := qserv.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.Load(cat); err != nil {
		return err
	}

	const scans = 6
	var wg sync.WaitGroup
	scanErrs := make([]error, scans)
	for i := 0; i < scans; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct predicates per query: identical payloads would
			// deduplicate at the worker instead of convoying.
			sql := fmt.Sprintf("SELECT COUNT(*) AS n FROM Object WHERE uFlux_PS > %g", 1e-31*float64(i+1))
			_, scanErrs[i] = cl.Query(sql)
		}(i)
	}
	interactive := 0
	for i := 0; i < 24; i++ {
		id := int64(1 + i*13)
		if _, err := cl.Query(fmt.Sprintf("SELECT * FROM Object WHERE objectId = %d", id)); err != nil {
			return err
		}
		interactive++
	}
	wg.Wait()
	for _, err := range scanErrs {
		if err != nil {
			return err
		}
	}

	var physical, logical, saved, pieces int64
	convoys := 0
	var intWaits, scanWaits []time.Duration
	for _, w := range cl.Workers {
		st := w.ScanStats()
		physical += st.BytesRead
		saved += st.ScansSaved
		pieces += st.PiecesRead
		convoys += st.Convoys
		for _, r := range w.Reports() {
			logical += r.Stats.SharedSeqBytes
			switch r.Class {
			case core.Interactive:
				intWaits = append(intWaits, r.QueueWait())
			case core.FullScan:
				scanWaits = append(scanWaits, r.QueueWait())
			}
		}
	}
	fmt.Printf("claim (section 4.3): convoy scheduling on the live path shares scan I/O without starving interactive queries\n")
	fmt.Printf("workload: %d concurrent full-scan queries + %d interactive dives on a %d-worker cluster\n",
		scans, interactive, cfg.Workers)
	fmt.Printf("  convoy tables: %d, piece reads: %d, scans saved: %d\n", convoys, pieces, saved)
	fmt.Printf("  independent scans would read: %d bytes\n", logical)
	if physical > 0 {
		fmt.Printf("  shared scans physically read:  %d bytes  (%.2fx less)\n",
			physical, float64(logical)/float64(physical))
	} else {
		fmt.Printf("  shared scans physically read:  %d bytes\n", physical)
	}
	p95Int := percentile(intWaits, 95)
	p50Scan := percentile(scanWaits, 50)
	fmt.Printf("  interactive queue wait p95: %v  (%d chunk queries)\n", p95Int, len(intWaits))
	fmt.Printf("  scan queue wait        p50: %v  (%d chunk queries)\n", p50Scan, len(scanWaits))
	switch {
	case physical >= logical:
		fmt.Printf("  RESULT: FAIL — sharing saved nothing\n")
	case p95Int >= p50Scan:
		fmt.Printf("  RESULT: FAIL — interactive queries waited like scans\n")
	default:
		fmt.Printf("  RESULT: ok — scans shared, interactive lane unblocked\n")
	}
	return nil
}

// runMergePipeline measures the czar's result-collection path — the
// paper's section 7.6 scalability bottleneck — under N concurrent user
// queries, comparing the serialized configuration (MergeParallelism=1,
// no top-K pushdown: the paper's behavior) against the pipelined one
// (parallel streaming merge + ORDER BY/LIMIT pushdown). Every answer is
// checked byte-identical against the single-engine oracle.
func runMergePipeline(ctx *benchCtx) error {
	cat, err := datagen.Generate(
		datagen.Config{Seed: *seedFlag, ObjectsPerPatch: *objectsFlag * 10, MeanSourcesPerObject: 0},
		datagen.DuplicateConfig{DeclBands: 3, MaxCopies: 20},
	)
	if err != nil {
		return err
	}

	serialized := qserv.DefaultClusterConfig(2)
	serialized.MergeParallelism = 1
	serialized.TopKPushdown = false
	pipelined := qserv.DefaultClusterConfig(2)

	// The concurrent workload: top-K retrievals, GROUP BY aggregation,
	// and a row-heavy filter scan, all merging at once.
	topkSQL := "SELECT objectId, ra_PS FROM Object ORDER BY ra_PS DESC, objectId LIMIT 10"
	groupSQL := "SELECT chunkId, COUNT(*) AS n, AVG(ra_PS), MIN(decl_PS), MAX(decl_PS) FROM Object GROUP BY chunkId"
	scanSQL := "SELECT objectId, ra_PS, decl_PS FROM Object WHERE uFlux_PS > 1e-31"
	batch := []string{topkSQL, groupSQL, scanSQL, topkSQL, groupSQL, scanSQL, topkSQL, scanSQL}

	type outcome struct {
		wall      time.Duration
		bytes     int64
		topkBytes int64
	}
	var outs [2]outcome
	var chunker *partition.Chunker
	oracleRows := map[string][]string{}

	for ci, cfg := range []qserv.ClusterConfig{serialized, pipelined} {
		cl, err := qserv.NewCluster(cfg)
		if err != nil {
			return err
		}
		if err := cl.Load(cat); err != nil {
			cl.Close()
			return err
		}
		if chunker == nil {
			chunker = cl.Chunker
			oracle, err := qserv.NewOracle(cfg)
			if err != nil {
				cl.Close()
				return err
			}
			if err := oracle.Load(cat); err != nil {
				cl.Close()
				return err
			}
			for _, sql := range []string{topkSQL, groupSQL, scanSQL} {
				res, err := oracle.Query(sql)
				if err != nil {
					cl.Close()
					return err
				}
				oracleRows[sql] = renderRows(res.Rows, strings.Contains(sql, "ORDER BY"))
			}
		}

		runBatch := func() (time.Duration, int64, int64, error) {
			start := time.Now()
			var wg sync.WaitGroup
			errCh := make(chan error, len(batch))
			bytesCh := make(chan [2]int64, len(batch))
			for _, sql := range batch {
				wg.Add(1)
				go func(sql string) {
					defer wg.Done()
					res, err := cl.Query(sql)
					if err != nil {
						errCh <- fmt.Errorf("%q: %w", sql, err)
						return
					}
					got := renderRows(res.Rows, strings.Contains(sql, "ORDER BY"))
					if !sameRendered(got, oracleRows[sql]) {
						errCh <- fmt.Errorf("%q: answer differs from the oracle", sql)
						return
					}
					var tk int64
					if sql == topkSQL {
						tk = res.ResultBytes
					}
					bytesCh <- [2]int64{res.ResultBytes, tk}
				}(sql)
			}
			wg.Wait()
			wall := time.Since(start)
			close(errCh)
			close(bytesCh)
			for err := range errCh {
				return 0, 0, 0, err
			}
			var total, tk int64
			for b := range bytesCh {
				total += b[0]
				tk += b[1]
			}
			return wall, total, tk, nil
		}

		// One warmup round (also oracle-checks every answer), then the
		// best of three timed rounds — concurrent wall times at laptop
		// scale are scheduler-noise-prone.
		if _, outs[ci].bytes, outs[ci].topkBytes, err = runBatch(); err != nil {
			cl.Close()
			return err
		}
		for round := 0; round < 3; round++ {
			wall, _, _, err := runBatch()
			if err != nil {
				cl.Close()
				return err
			}
			if outs[ci].wall == 0 || wall < outs[ci].wall {
				outs[ci].wall = wall
			}
		}
		cl.Close()
	}

	qps := func(o outcome) float64 { return float64(len(batch)) / o.wall.Seconds() }
	fmt.Printf("claim (section 7.6): parallelizing result collection removes the master bottleneck\n")
	fmt.Printf("workload: %d concurrent user queries (top-K / GROUP BY / filter scan), 2 workers, oracle-checked\n", len(batch))
	fmt.Printf("  %-34s %10s %12s %14s\n", "config", "wall", "queries/s", "result bytes")
	fmt.Printf("  %-34s %10v %12.1f %14d\n", "serialized (MergeParallelism=1)", outs[0].wall.Round(time.Millisecond), qps(outs[0]), outs[0].bytes)
	fmt.Printf("  %-34s %10v %12.1f %14d\n", "pipelined (MergeParallelism=8+topK)", outs[1].wall.Round(time.Millisecond), qps(outs[1]), outs[1].bytes)
	fmt.Printf("  merge throughput: %.2fx\n", qps(outs[1])/qps(outs[0]))
	fmt.Printf("  top-K query bytes: %d -> %d (%.1fx less)\n",
		outs[0].topkBytes, outs[1].topkBytes, float64(outs[0].topkBytes)/float64(outs[1].topkBytes))
	switch {
	case outs[1].topkBytes >= outs[0].topkBytes:
		// Deterministic check — a real regression, so fail the run (CI
		// gates on it via `make bench-smoke`).
		fmt.Printf("  RESULT: FAIL — pushdown did not reduce shipped bytes\n")
		return fmt.Errorf("merge-pipeline: top-K pushdown shipped %d bytes, serialized shipped %d",
			outs[1].topkBytes, outs[0].topkBytes)
	case qps(outs[1]) <= qps(outs[0]):
		// Timing-dependent: report, but don't flake CI over scheduler noise.
		fmt.Printf("  RESULT: WARN — pipelining did not improve merge throughput on this run\n")
	default:
		fmt.Printf("  RESULT: ok — answers oracle-identical, merge pipelined, top-K pushed down\n")
	}
	return nil
}

// runKillLatency measures the query-management acceptance criterion:
// when a full-scan query is killed mid-flight, how long until its
// worker scan slots are actually reclaimed? The kill must propagate
// czar -> xrd cancel transaction -> worker scheduler, dequeueing queued
// chunk queries and detaching running ones from their shared-scan
// convoys at the next piece boundary — while a convoy sibling query is
// unaffected (oracle-checked).
func runKillLatency(ctx *benchCtx) error {
	cat, err := datagen.Generate(
		datagen.Config{Seed: *seedFlag, ObjectsPerPatch: 200 + *objectsFlag*10, MeanSourcesPerObject: 0},
		datagen.DuplicateConfig{DeclBands: 3, MaxCopies: 20},
	)
	if err != nil {
		return err
	}
	cfg := qserv.DefaultClusterConfig(2)
	cfg.WorkerSlots = 1 // one scan slot per worker: a backlog forms, so the kill lands mid-flight
	cfg.ScanPieceRows = 64
	cl, err := qserv.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.Load(cat); err != nil {
		return err
	}
	oracle, err := qserv.NewOracle(cfg)
	if err != nil {
		return err
	}
	if err := oracle.Load(cat); err != nil {
		return err
	}

	// A convoy sibling that must survive the kill untouched.
	survivorSQL := "SELECT COUNT(*) AS n FROM Object WHERE uFlux_PS > 1e-31"
	victimSQL := "SELECT COUNT(*) AS n FROM Object WHERE uFlux_PS > 2e-31"
	survivor, err := cl.Submit(context.Background(), survivorSQL)
	if err != nil {
		return err
	}
	victim, err := cl.Submit(context.Background(), victimSQL)
	if err != nil {
		return err
	}

	// Let the victim get properly mid-flight: some chunks merged, many
	// still queued on the workers' scan lanes.
	deadline := time.Now().Add(30 * time.Second)
	for {
		p := victim.Progress()
		if p.ChunksCompleted >= 2 && p.ChunksCompleted < p.ChunksTotal {
			break
		}
		if p.Done || time.Now().After(deadline) {
			return fmt.Errorf("kill-latency: victim never mid-flight (progress %+v)", p)
		}
		time.Sleep(200 * time.Microsecond)
	}
	atCancel := victim.Progress()
	t0 := time.Now()
	victim.Cancel()
	_, verr := victim.Wait(context.Background())
	waitLatency := time.Since(t0)

	// Slot reclamation: every canceled-running chunk query's executor
	// slot frees when its report lands; the last such finish bounds the
	// reclaim. (The survivor keeps running — its slots don't count.)
	sres, serr := survivor.Wait(context.Background())
	if serr != nil {
		return fmt.Errorf("kill-latency: survivor failed: %w", serr)
	}
	want, err := oracle.Query(survivorSQL)
	if err != nil {
		return err
	}
	if sres.Rows[0][0].(int64) != want.Rows[0][0].(int64) {
		return fmt.Errorf("kill-latency: survivor answer %v differs from oracle %v (convoy member corrupted by the kill)",
			sres.Rows[0][0], want.Rows[0][0])
	}

	var canceledJobs int
	var reclaim time.Duration
	var abortedMidScan int
	for _, w := range cl.Workers {
		for _, r := range w.Reports() {
			if r.Err == nil {
				continue
			}
			canceledJobs++
			if d := r.FinishedAt.Sub(t0); d > reclaim {
				reclaim = d
			}
			if r.StartedAt.Before(t0) {
				abortedMidScan++
			}
		}
	}

	fmt.Printf("claim (section 5): the czar manages long-running queries — a kill frees worker resources\n")
	fmt.Printf("workload: 2 convoying full scans over %d chunks, %d workers x %d scan slot\n",
		atCancel.ChunksTotal, cfg.Workers, cfg.WorkerSlots)
	fmt.Printf("  at cancel: %d/%d chunks merged, %d dispatched\n",
		atCancel.ChunksCompleted, atCancel.ChunksTotal, atCancel.ChunksDispatched)
	fmt.Printf("  Wait returned in:            %v (err: %v)\n", waitLatency.Round(time.Microsecond), verr)
	fmt.Printf("  chunk queries aborted:       %d (%d were running when the kill landed)\n", canceledJobs, abortedMidScan)
	fmt.Printf("  never started (dequeued):    %d\n", atCancel.ChunksTotal-atCancel.ChunksCompleted-canceledJobs)
	fmt.Printf("  slot reclaim after Cancel:   %v\n", reclaim.Round(time.Microsecond))
	fmt.Printf("  survivor: oracle-identical (%v rows counted)\n", sres.Rows[0][0])
	const bound = time.Second // a scan piece here is far under a millisecond
	switch {
	case verr == nil:
		// The victim finished in the instant between the mid-flight
		// check and the cancel taking effect — nothing to measure on
		// this (very fast) run, but not a regression.
		fmt.Printf("  RESULT: skip — victim completed before the kill landed\n")
		return nil
	case !errors.Is(verr, context.Canceled):
		fmt.Printf("  RESULT: FAIL — Wait returned %v, want context.Canceled\n", verr)
		return fmt.Errorf("kill-latency: Wait error = %v", verr)
	case reclaim > bound:
		fmt.Printf("  RESULT: FAIL — slots reclaimed in %v (> %v)\n", reclaim, bound)
		return fmt.Errorf("kill-latency: reclaim took %v", reclaim)
	default:
		fmt.Printf("  RESULT: ok — kill propagated to the scan lanes within one piece\n")
	}
	return nil
}

// runIngestBench measures the write half of the system: the same
// synthetic catalog ingested through CreateTables + Ingest twice, once
// with shipping serialized to one in-flight batch (the legacy
// Cluster.Load behavior: every chunk table loaded in sequence) and
// once with the default per-worker shipping lanes, all batches riding
// the xrd fabric's /load transaction. Both clusters then answer a
// query battery checked against the single-node oracle, so the speedup
// is only reported for identical results.
func runIngestBench(ctx *benchCtx) error {
	cat, err := datagen.Generate(
		datagen.Config{Seed: *seedFlag, ObjectsPerPatch: *objectsFlag * 20, MeanSourcesPerObject: 2},
		datagen.DuplicateConfig{DeclBands: 3, MaxCopies: 30},
	)
	if err != nil {
		return err
	}
	const workers = 8
	serial := qserv.DefaultClusterConfig(workers)
	serial.IngestParallelism = 1
	parallel := qserv.DefaultClusterConfig(workers)

	oracle, err := qserv.NewOracle(parallel)
	if err != nil {
		return err
	}
	if err := oracle.Load(cat); err != nil {
		return err
	}
	battery := []string{
		"SELECT COUNT(*) AS n FROM Object",
		"SELECT COUNT(*) AS n FROM Source",
		"SELECT chunkId, COUNT(*) AS n FROM Object GROUP BY chunkId",
		"SELECT objectId, ra_PS FROM Object ORDER BY ra_PS, objectId LIMIT 5",
		fmt.Sprintf("SELECT COUNT(*) AS n FROM Source WHERE objectId = %d", cat.Objects[0].ObjectID),
	}
	oracleRows := map[string][]string{}
	for _, sql := range battery {
		res, err := oracle.Query(sql)
		if err != nil {
			return err
		}
		oracleRows[sql] = renderRows(res.Rows, strings.Contains(sql, "ORDER BY"))
	}

	totalRows := int64(len(cat.Objects) + len(cat.Sources))
	ingestOnce := func(cfg qserv.ClusterConfig, check bool) (time.Duration, error) {
		cl, err := qserv.NewCluster(cfg)
		if err != nil {
			return 0, err
		}
		defer cl.Close()
		start := time.Now()
		if err := cl.Load(cat); err != nil { // CreateTables(LSSTSpec()) + one Ingest per table
			return 0, err
		}
		elapsed := time.Since(start)
		if check {
			for _, sql := range battery {
				res, err := cl.Query(sql)
				if err != nil {
					return 0, fmt.Errorf("%q: %w", sql, err)
				}
				got := renderRows(res.Rows, strings.Contains(sql, "ORDER BY"))
				if !sameRendered(got, oracleRows[sql]) {
					return 0, fmt.Errorf("%q: answer differs from the oracle after ingest", sql)
				}
			}
		}
		return elapsed, nil
	}

	// Best of two rounds per mode (fresh clusters; wall times at laptop
	// scale are scheduler-noise-prone), answers oracle-checked once.
	times := map[string]time.Duration{}
	for _, mode := range []struct {
		name string
		cfg  qserv.ClusterConfig
	}{{"serialized", serial}, {"parallel", parallel}} {
		for round := 0; round < 2; round++ {
			d, err := ingestOnce(mode.cfg, round == 0)
			if err != nil {
				return err
			}
			if cur, ok := times[mode.name]; !ok || d < cur {
				times[mode.name] = d
			}
		}
	}

	rate := func(d time.Duration) float64 { return float64(totalRows) / d.Seconds() }
	speedup := float64(times["serialized"]) / float64(times["parallel"])
	fmt.Printf("claim: fabric-routed per-worker shipping lanes parallelize ingest across the cluster\n")
	fmt.Printf("workload: %d objects + %d sources onto %d workers over %d CPUs, oracle-checked\n",
		len(cat.Objects), len(cat.Sources), workers, runtime.NumCPU())
	fmt.Printf("  %-36s %10s %14s\n", "config", "wall", "rows/s")
	fmt.Printf("  %-36s %10v %14.0f\n", "serialized shipping (legacy Load)", times["serialized"].Round(time.Millisecond), rate(times["serialized"]))
	fmt.Printf("  %-36s %10v %14.0f\n", "parallel lanes (one per worker)", times["parallel"].Round(time.Millisecond), rate(times["parallel"]))
	fmt.Printf("  ingest speedup: %.2fx\n", speedup)
	switch {
	case runtime.NumCPU() == 1:
		// Lane parallelism is real concurrency, not a simulation: with
		// one CPU there is nothing to overlap onto, so wall-clock
		// speedup cannot exist on this host. The oracle check above is
		// the hard gate; the 2x target applies to multi-core hosts.
		fmt.Printf("  RESULT: skip — single-CPU host cannot exhibit parallel speedup (answers oracle-identical)\n")
	case speedup < 2:
		// Timing-dependent: report, but don't flake CI over scheduler noise.
		fmt.Printf("  RESULT: WARN — speedup below the 2x target on this run\n")
	default:
		fmt.Printf("  RESULT: ok — answers oracle-identical, ingest >= 2x faster in parallel\n")
	}
	return nil
}

// runFailover measures the availability subsystem end to end: a
// 4-worker cluster at Replication 2 serves a concurrent oracle-checked
// scan workload while one worker is killed abruptly (its in-flight
// fabric transactions sever, like a torn TCP peer). Reported:
// time-to-detect (failure detector marks the worker dead),
// time-to-repair (the replication manager restores every chunk to full
// replication on the survivors), and the query success rate across the
// whole run. Hard gates: every answer oracle-identical, no query lost
// (replica failover must mask the death), and repair must complete.
func runFailover(ctx *benchCtx) error {
	cat, err := datagen.Generate(
		datagen.Config{Seed: *seedFlag, ObjectsPerPatch: 100 + *objectsFlag*4, MeanSourcesPerObject: 0},
		datagen.DuplicateConfig{DeclBands: 3, MaxCopies: 20},
	)
	if err != nil {
		return err
	}
	cfg := qserv.DefaultClusterConfig(4)
	cfg.Replication = 2
	cfg.HealthInterval = 20 * time.Millisecond
	cfg.DeadMisses = 2
	cfg.ScanPieceRows = 256
	cl, err := qserv.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.Load(cat); err != nil {
		return err
	}
	oracle, err := qserv.NewOracle(cfg)
	if err != nil {
		return err
	}
	if err := oracle.Load(cat); err != nil {
		return err
	}

	battery := []string{
		"SELECT COUNT(*) AS n FROM Object",
		"SELECT chunkId, COUNT(*) AS n FROM Object GROUP BY chunkId",
		"SELECT objectId, ra_PS FROM Object ORDER BY ra_PS, objectId LIMIT 10",
		"SELECT COUNT(*) AS n FROM Object WHERE uFlux_PS > 1e-31",
	}
	oracleRows := map[string][]string{}
	for _, sql := range battery {
		res, err := oracle.Query(sql)
		if err != nil {
			return err
		}
		oracleRows[sql] = renderRows(res.Rows, strings.Contains(sql, "ORDER BY"))
	}

	// The concurrent workload: four streams looping the battery until
	// told to stop, each answer checked against the oracle.
	var total, failed, wrong, retries int64
	var cmu sync.Mutex
	var firstErr error
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := i; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				sql := battery[n%len(battery)]
				res, err := cl.Query(sql)
				cmu.Lock()
				total++
				if err != nil {
					failed++
					if firstErr == nil {
						firstErr = fmt.Errorf("%q: %w", sql, err)
					}
				} else {
					retries += int64(res.Retries)
					if !sameRendered(renderRows(res.Rows, strings.Contains(sql, "ORDER BY")), oracleRows[sql]) {
						wrong++
						if firstErr == nil {
							firstErr = fmt.Errorf("%q: answer differs from the oracle", sql)
						}
					}
				}
				cmu.Unlock()
			}
		}(i)
	}

	time.Sleep(100 * time.Millisecond) // warm the workload up
	victim := cl.Workers[0].Name()
	t0 := time.Now()
	cl.Endpoint(victim).SetDown(true)

	// Time to detect: the failure detector marks the victim dead.
	var detect time.Duration
	deadline := time.Now().Add(30 * time.Second)
	for detect == 0 {
		for _, w := range cl.Status().Workers {
			if w.Name == victim && w.State == qserv.WorkerDead {
				detect = time.Since(t0)
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("failover: worker never detected dead")
		}
		time.Sleep(time.Millisecond)
	}

	// Time to repair: every chunk back at full replication on survivors.
	var repair time.Duration
	for repair == 0 {
		healed := true
		for _, c := range cl.Placement.Chunks() {
			ws := cl.Placement.Workers(c)
			if len(ws) < cfg.Replication {
				healed = false
				break
			}
			for _, w := range ws {
				if w == victim {
					healed = false
					break
				}
			}
			if !healed {
				break
			}
		}
		if healed && cl.Status().Repair.ChunksPending == 0 {
			repair = time.Since(t0)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("failover: replication not restored (repair %+v)", cl.Status().Repair)
		}
		time.Sleep(time.Millisecond)
	}

	time.Sleep(100 * time.Millisecond) // post-repair traffic
	close(stop)
	wg.Wait()

	st := cl.Status()
	cmu.Lock()
	defer cmu.Unlock()
	okQ := total - failed - wrong
	fmt.Printf("claim: the availability subsystem masks a worker death and restores the replication factor\n")
	fmt.Printf("workload: 4 concurrent oracle-checked query streams, 4 workers x replication 2, 1 abrupt kill\n")
	fmt.Printf("  time to detect (dead after %d missed %v probes): %v\n", cfg.DeadMisses, cfg.HealthInterval, detect.Round(time.Millisecond))
	fmt.Printf("  time to restore full replication:                %v\n", repair.Round(time.Millisecond))
	fmt.Printf("  chunks re-homed: %d, tables copied: %d, bytes copied: %d\n",
		st.Repair.ChunksRepaired, st.Repair.TablesCopied, st.Repair.BytesCopied)
	fmt.Printf("  queries: %d total, %d ok, %d failed, %d wrong (%.1f%% success), %d replica failovers\n",
		total, okQ, failed, wrong, 100*float64(okQ)/float64(total), retries)
	switch {
	case wrong > 0:
		fmt.Printf("  RESULT: FAIL — a query answered differently from the oracle\n")
		return fmt.Errorf("failover: %d wrong answers; first: %v", wrong, firstErr)
	case failed > 0:
		fmt.Printf("  RESULT: FAIL — a query was lost despite replication\n")
		return fmt.Errorf("failover: %d failed queries; first: %v", failed, firstErr)
	case st.Repair.ChunksRepaired == 0:
		fmt.Printf("  RESULT: FAIL — no chunk was re-homed\n")
		return fmt.Errorf("failover: repair did nothing")
	default:
		fmt.Printf("  RESULT: ok — death masked, answers oracle-identical, replication restored\n")
	}
	return nil
}

// runRestart measures what the durable chunk store buys on a worker
// restart: a worker with a DataDir killed and restarted recovers its
// chunk tables from its own disk and rejoins serving — zero chunks
// re-homed, zero tables copied — versus the store-less baseline, where
// the same death forces the replication manager to re-copy every one
// of the victim's chunks onto survivors. Both phases run a concurrent
// oracle-checked query stream. Hard gates: every answer
// oracle-identical, no query lost, and the durable restart must move
// zero chunks; the time comparison WARNs instead of failing when the
// baseline is too fast to measure meaningfully.
func runRestart(ctx *benchCtx) error {
	cat, err := datagen.Generate(
		datagen.Config{Seed: *seedFlag, ObjectsPerPatch: 100 + *objectsFlag*4, MeanSourcesPerObject: 0},
		datagen.DuplicateConfig{DeclBands: 3, MaxCopies: 20},
	)
	if err != nil {
		return err
	}
	dataDir, err := os.MkdirTemp("", "qserv-bench-restart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	baseCfg := qserv.DefaultClusterConfig(4)
	baseCfg.Replication = 2
	baseCfg.HealthInterval = 20 * time.Millisecond
	baseCfg.DeadMisses = 2
	baseCfg.ScanPieceRows = 256

	oracle, err := qserv.NewOracle(baseCfg)
	if err != nil {
		return err
	}
	if err := oracle.Load(cat); err != nil {
		return err
	}
	battery := []string{
		"SELECT COUNT(*) AS n FROM Object",
		"SELECT chunkId, COUNT(*) AS n FROM Object GROUP BY chunkId",
		"SELECT COUNT(*) AS n FROM Object WHERE uFlux_PS > 1e-31",
	}
	oracleRows := map[string][]string{}
	for _, sql := range battery {
		res, err := oracle.Query(sql)
		if err != nil {
			return err
		}
		oracleRows[sql] = renderRows(res.Rows, false)
	}

	// One phase: build a cluster, run the checked stream, invoke the
	// outage, and time until the cluster is whole again.
	type phaseResult struct {
		recover              time.Duration
		total, failed, wrong int64
		repaired, copied     int
		healed               int
		firstErr             error
	}
	runPhase := func(cfg qserv.ClusterConfig, outage func(cl *qserv.Cluster, victim string) error,
		whole func(cl *qserv.Cluster, victim string) bool) (*phaseResult, error) {
		cl, err := qserv.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		if err := cl.Load(cat); err != nil {
			return nil, err
		}
		pr := &phaseResult{}
		var cmu sync.Mutex
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for n := i; ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					sql := battery[n%len(battery)]
					res, err := cl.Query(sql)
					cmu.Lock()
					pr.total++
					if err != nil {
						pr.failed++
						if pr.firstErr == nil {
							pr.firstErr = fmt.Errorf("%q: %w", sql, err)
						}
					} else if !sameRendered(renderRows(res.Rows, false), oracleRows[sql]) {
						pr.wrong++
						if pr.firstErr == nil {
							pr.firstErr = fmt.Errorf("%q: answer differs from the oracle", sql)
						}
					}
					cmu.Unlock()
				}
			}(i)
		}

		time.Sleep(100 * time.Millisecond) // warm the workload up
		victim := cl.Workers[0].Name()
		t0 := time.Now()
		if err := outage(cl, victim); err != nil {
			close(stop)
			wg.Wait()
			return nil, err
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			if whole(cl, victim) && cl.Status().Repair.ChunksPending == 0 {
				pr.recover = time.Since(t0)
				break
			}
			if time.Now().After(deadline) {
				close(stop)
				wg.Wait()
				return nil, fmt.Errorf("restart: cluster never whole again (repair %+v)", cl.Status().Repair)
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(50 * time.Millisecond) // post-recovery traffic
		close(stop)
		wg.Wait()
		st := cl.Status()
		pr.repaired, pr.copied, pr.healed = st.Repair.ChunksRepaired, st.Repair.TablesCopied, st.Repair.ChunksHealed
		return pr, nil
	}

	workerAlive := func(cl *qserv.Cluster, name string) bool {
		for _, w := range cl.Status().Workers {
			if w.Name == name {
				return w.State == qserv.WorkerAlive
			}
		}
		return false
	}
	fullyOffVictim := func(cl *qserv.Cluster, victim string) bool {
		for _, c := range cl.Placement.Chunks() {
			ws := cl.Placement.Workers(c)
			if len(ws) < baseCfg.Replication {
				return false
			}
			for _, w := range ws {
				if w == victim {
					return false
				}
			}
		}
		return true
	}

	// Phase 1 — durable restart: the store makes the victim's data
	// survive; the grace window keeps repair from re-homing meanwhile.
	durCfg := baseCfg
	durCfg.DataDir = dataDir
	durCfg.RepairGrace = 60 * time.Second
	durable, err := runPhase(durCfg,
		func(cl *qserv.Cluster, victim string) error { return cl.RestartWorker(victim) },
		workerAlive)
	if err != nil {
		return err
	}

	// Phase 2 — baseline (PR 5 behavior): no store, the victim stays
	// dead, and the cluster is whole only after re-replicating every one
	// of its chunks onto the survivors.
	baseline, err := runPhase(baseCfg,
		func(cl *qserv.Cluster, victim string) error {
			cl.Endpoint(victim).SetDown(true)
			return nil
		},
		fullyOffVictim)
	if err != nil {
		return err
	}

	fmt.Printf("claim: a disk-backed chunk store turns a worker restart from a re-replication event into a local recovery\n")
	fmt.Printf("workload: 4 workers x replication 2, concurrent oracle-checked streams, 1 worker killed\n")
	fmt.Printf("  %-44s %12s %10s %8s %8s\n", "config", "recovered in", "re-homed", "copied", "healed")
	fmt.Printf("  %-44s %12v %10d %8d %8d\n", "durable restart (DataDir recovery)",
		durable.recover.Round(time.Millisecond), durable.repaired, durable.copied, durable.healed)
	fmt.Printf("  %-44s %12v %10d %8d %8d\n", "baseline: death + re-replication (no store)",
		baseline.recover.Round(time.Millisecond), baseline.repaired, baseline.copied, baseline.healed)
	fmt.Printf("  queries: durable %d total (%d failed, %d wrong); baseline %d total (%d failed, %d wrong)\n",
		durable.total, durable.failed, durable.wrong, baseline.total, baseline.failed, baseline.wrong)
	for _, p := range []struct {
		name string
		pr   *phaseResult
	}{{"durable", durable}, {"baseline", baseline}} {
		switch {
		case p.pr.wrong > 0:
			fmt.Printf("  RESULT: FAIL — %s phase answered differently from the oracle\n", p.name)
			return fmt.Errorf("restart: %s: %d wrong answers; first: %v", p.name, p.pr.wrong, p.pr.firstErr)
		case p.pr.failed > 0:
			fmt.Printf("  RESULT: FAIL — %s phase lost a query despite replication\n", p.name)
			return fmt.Errorf("restart: %s: %d failed queries; first: %v", p.name, p.pr.failed, p.pr.firstErr)
		}
	}
	switch {
	case durable.repaired != 0 || durable.copied != 0 || durable.healed != 0:
		fmt.Printf("  RESULT: FAIL — the durable restart moved data (%d re-homed, %d copied, %d healed)\n",
			durable.repaired, durable.copied, durable.healed)
		return fmt.Errorf("restart: durable restart was not copy-free")
	case baseline.repaired == 0:
		fmt.Printf("  RESULT: FAIL — the baseline death re-homed nothing; the comparison is vacuous\n")
		return fmt.Errorf("restart: baseline repair did nothing")
	case baseline.recover < 20*time.Millisecond:
		fmt.Printf("  RESULT: WARN — baseline re-replication finished in %v; too fast to compare meaningfully at this scale\n",
			baseline.recover.Round(time.Millisecond))
	case durable.recover >= baseline.recover:
		fmt.Printf("  RESULT: WARN — durable restart (%v) not faster than re-replication (%v) on this run\n",
			durable.recover.Round(time.Millisecond), baseline.recover.Round(time.Millisecond))
	default:
		fmt.Printf("  RESULT: ok — copy-free durable restart, %.1fx faster than re-replication, answers oracle-identical\n",
			float64(baseline.recover)/float64(durable.recover))
	}
	return nil
}

// runPaging measures a worker fleet operating far beyond its memory
// budget: phase A runs an unbudgeted durable cluster and records each
// worker's full resident footprint plus the steady-state latency of a
// hot spatially-restricted query; phase B reruns the same workload
// with every worker budgeted to ~1/4 of the largest phase-A footprint,
// so chunks must page in lazily and cold chunks must evict. Hard
// gates: every answer oracle-identical in both phases, the budget
// must actually force evictions and re-materializations (no vacuous
// pass), and the hot-chunk query — whose chunks the LRU should keep
// resident — must stay within 2x of the unbudgeted latency. The
// latency gate degrades to WARN when the unbudgeted time is too small
// for the comparison to mean anything.
func runPaging(ctx *benchCtx) error {
	cat, err := datagen.Generate(
		datagen.Config{Seed: *seedFlag, ObjectsPerPatch: 100 + *objectsFlag*4, MeanSourcesPerObject: 0},
		datagen.DuplicateConfig{DeclBands: 3, MaxCopies: 20},
	)
	if err != nil {
		return err
	}

	baseCfg := qserv.DefaultClusterConfig(3)
	baseCfg.Replication = 2
	baseCfg.ScanPieceRows = 256

	oracle, err := qserv.NewOracle(baseCfg)
	if err != nil {
		return err
	}
	if err := oracle.Load(cat); err != nil {
		return err
	}
	battery := []string{
		"SELECT COUNT(*) AS n FROM Object",
		"SELECT chunkId, COUNT(*) AS n FROM Object GROUP BY chunkId",
		"SELECT COUNT(*) AS n FROM Object WHERE uFlux_PS > 1e-31",
	}
	hotSQL := "SELECT COUNT(*) AS n FROM Object WHERE qserv_areaspec_box(2, 2, 8, 8)"
	oracleRows := map[string][]string{}
	for _, sql := range append(append([]string{}, battery...), hotSQL) {
		res, err := oracle.Query(sql)
		if err != nil {
			return err
		}
		oracleRows[sql] = renderRows(res.Rows, false)
	}

	// One phase: a durable cluster at the given budget runs the checked
	// battery, then a warmed, repeated hot-chunk query.
	type pagingResult struct {
		maxResident      int64
		hot              time.Duration
		evictions        int64
		materializations int64
	}
	runPhase := func(budget int64) (*pagingResult, error) {
		dataDir, err := os.MkdirTemp("", "qserv-bench-paging-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dataDir)
		cfg := baseCfg
		cfg.DataDir = dataDir
		cfg.WorkerMemoryBudget = budget
		cl, err := qserv.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		if err := cl.Load(cat); err != nil {
			return nil, err
		}
		pr := &pagingResult{}
		for _, sql := range battery {
			res, err := cl.Query(sql)
			if err != nil {
				return nil, fmt.Errorf("paging: %q: %w", sql, err)
			}
			if !sameRendered(renderRows(res.Rows, false), oracleRows[sql]) {
				return nil, fmt.Errorf("paging: %q: answer differs from the oracle", sql)
			}
		}
		// The battery just touched every chunk, so the footprint peaks now.
		for _, w := range cl.Workers {
			if st := w.ResidencyStats(); st.ResidentBytes > pr.maxResident {
				pr.maxResident = st.ResidentBytes
			}
		}
		// Hot-chunk loop: two warm-up passes materialize the box's chunks,
		// then the timed passes should find them still resident.
		const iters = 15
		times := make([]time.Duration, 0, iters)
		for i := 0; i < iters+2; i++ {
			t0 := time.Now()
			res, err := cl.Query(hotSQL)
			d := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("paging: hot query: %w", err)
			}
			if !sameRendered(renderRows(res.Rows, false), oracleRows[hotSQL]) {
				return nil, fmt.Errorf("paging: hot query: answer differs from the oracle")
			}
			if i >= 2 {
				times = append(times, d)
			}
		}
		pr.hot = percentile(times, 50)
		for _, w := range cl.Workers {
			st := w.ResidencyStats()
			pr.evictions += st.Evictions
			pr.materializations += st.Materializations
		}
		return pr, nil
	}

	// Phase A — unbudgeted: everything stays resident; this measures the
	// true working set and the no-paging hot latency.
	full, err := runPhase(0)
	if err != nil {
		return err
	}
	if full.maxResident == 0 {
		return fmt.Errorf("paging: unbudgeted phase reports a zero-byte working set")
	}
	budget := full.maxResident / 4

	// Phase B — the same workload with each worker at a quarter of the
	// working set.
	paged, err := runPhase(budget)
	if err != nil {
		return err
	}

	fmt.Printf("claim: a worker can serve a working set ~4x its memory budget via lazy materialization + LRU eviction, answers unchanged\n")
	fmt.Printf("workload: 3 workers x replication 2, oracle-checked battery + %d hot-chunk iterations\n", 15)
	fmt.Printf("  %-40s %14s %12s %10s %14s\n", "config", "max resident", "hot p50", "evicted", "materialized")
	fmt.Printf("  %-40s %14d %12v %10d %14d\n", "unbudgeted (working set)",
		full.maxResident, full.hot.Round(time.Microsecond), full.evictions, full.materializations)
	fmt.Printf("  %-40s %14d %12v %10d %14d\n", fmt.Sprintf("budget %d B (~1/4 working set)", budget),
		paged.maxResident, paged.hot.Round(time.Microsecond), paged.evictions, paged.materializations)
	switch {
	case paged.evictions == 0:
		fmt.Printf("  RESULT: FAIL — the budget never forced an eviction; the comparison is vacuous\n")
		return fmt.Errorf("paging: no evictions at budget %d", budget)
	case paged.materializations == 0:
		fmt.Printf("  RESULT: FAIL — nothing was re-materialized under the budget\n")
		return fmt.Errorf("paging: no materializations at budget %d", budget)
	case full.hot < 2*time.Millisecond:
		fmt.Printf("  RESULT: WARN — unbudgeted hot query took %v; too fast to gate the slowdown meaningfully at this scale\n",
			full.hot.Round(time.Microsecond))
	case paged.hot > 2*full.hot:
		fmt.Printf("  RESULT: FAIL — hot-chunk query %.1fx slower under the budget (limit 2x)\n",
			float64(paged.hot)/float64(full.hot))
		return fmt.Errorf("paging: hot-chunk latency %v exceeds 2x unbudgeted %v", paged.hot, full.hot)
	default:
		fmt.Printf("  RESULT: ok — paged worker oracle-identical, hot chunks stayed resident (%.2fx unbudgeted latency)\n",
			float64(paged.hot)/float64(full.hot))
	}
	return nil
}

// renderRows renders result rows to canonical strings; unordered
// results are sorted so comparison is order-insensitive. It accepts
// both the public API's rows ([]qserv.Row) and engine rows.
func renderRows[R ~[]any](rows []R, ordered bool) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = sqlengine.FormatValue(v)
		}
		out[i] = strings.Join(parts, "|")
	}
	if !ordered {
		sort.Strings(out)
	}
	return out
}

func sameRendered(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// percentile returns the pth nearest-rank percentile of ds.
func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func runAblateIndex(ctx *benchCtx) error {
	e := sqlengine.New("LSST")
	if _, err := e.Execute("CREATE TABLE t (objectId BIGINT, x DOUBLE)"); err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < 20000; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, %g)", i, float64(i)*0.5)
	}
	if _, err := e.Execute(sb.String()); err != nil {
		return err
	}
	scan, err := e.Query("SELECT * FROM t WHERE objectId = 12345")
	if err != nil {
		return err
	}
	if _, err := e.Execute("CREATE INDEX i ON t (objectId)"); err != nil {
		return err
	}
	indexed, err := e.Query("SELECT * FROM t WHERE objectId = 12345")
	if err != nil {
		return err
	}
	fmt.Printf("claim (section 5.5): the objectId index turns point queries into one seek\n")
	fmt.Printf("  full scan: %d bytes sequential, %d random reads\n", scan.Stats.SeqBytes, scan.Stats.RandReads)
	fmt.Printf("  indexed:   %d bytes sequential, %d random reads\n", indexed.Stats.SeqBytes, indexed.Stats.RandReads)
	return nil
}

func runAblateHTM(ctx *benchCtx) error {
	chunker, err := partition.NewChunker(partition.PaperConfig())
	if err != nil {
		return err
	}
	// RA/decl chunk area spread.
	minA, maxA := 1e18, 0.0
	for _, c := range chunker.AllChunks() {
		b, err := chunker.ChunkBounds(c)
		if err != nil {
			return err
		}
		a := b.Area()
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	// HTM trixel area spread at a comparable granularity (level 5:
	// 8192 trixels ~ 8983 chunks).
	lvl := 5
	tmin, tmax := 1e18, 0.0
	lo := htm.ID(8) << uint(2*lvl)
	hi := htm.ID(16) << uint(2*lvl)
	for id := lo; id < hi; id++ {
		a, err := htm.Area(id)
		if err != nil {
			return err
		}
		if a < tmin {
			tmin = a
		}
		if a > tmax {
			tmax = a
		}
	}
	// A naive fixed RA x decl grid (what "rectangular fragmentation"
	// means without Qserv's per-stripe chunk-count adaptation): cells
	// collapse toward the poles.
	gmin, gmax := 1e18, 0.0
	const gw, gh = 2.1176, 2.1176 // ~the paper's stripe height
	for d := -90.0; d < 90; d += gh {
		cell := sphgeom.NewBox(0, gw, d, d+gh)
		a := cell.Area()
		if a < gmin {
			gmin = a
		}
		if a > gmax {
			gmax = a
		}
	}
	fmt.Printf("claim (section 7.5): rectangular fragmentation distorts near the poles; HTM does not\n")
	fmt.Printf("  naive RA x decl grid:  area %.5f..%.4f deg^2, max/min = %.0f\n", gmin, gmax, gmax/gmin)
	fmt.Printf("  Qserv adaptive chunks (%d): area %.4f..%.4f deg^2, max/min = %.1f\n",
		chunker.TotalChunks(), minA, maxA, maxA/minA)
	fmt.Printf("  HTM level-%d trixels (%d): area %.4f..%.4f deg^2, max/min = %.1f\n",
		lvl, htm.NumTrixels(lvl), tmin, tmax, tmax/tmin)
	return nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// runPointQuery measures the ISSUE-9 point-query fast path on the live
// cluster: secondary-index dives vs a full fan-out baseline, czar
// result-cache hit latency, and cache invalidation across an ingest.
// Wrong answers and dives wider than the replication factor are hard
// failures.
func runPointQuery(ctx *benchCtx) error {
	cat, err := datagen.Generate(
		datagen.Config{Seed: *seedFlag, ObjectsPerPatch: 100 + *objectsFlag*4, MeanSourcesPerObject: 1},
		datagen.DuplicateConfig{DeclBands: 3, MaxCopies: 20},
	)
	if err != nil {
		return err
	}
	cfg := qserv.DefaultClusterConfig(4)
	cfg.Replication = 2
	cl, err := qserv.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	// Tables are declared up front but ingested after the first probe,
	// so the invalidation phase below can cache a pre-ingest answer.
	if err := cl.CreateTables(qserv.LSSTSpec()); err != nil {
		return err
	}
	oracle, err := qserv.NewOracle(cfg)
	if err != nil {
		return err
	}
	if err := oracle.Load(cat); err != nil {
		return err
	}

	// Phase 1: cache a pre-ingest Source answer (empty tables, zero
	// chunks placed), then ingest and make sure the stale empty answer
	// is never served again.
	preSQL := "SELECT COUNT(*) AS n FROM Source"
	for i := 0; i < 2; i++ {
		if _, err := cl.Query(preSQL); err != nil {
			return err
		}
	}
	objRows := make([]qserv.Row, 0, len(cat.Objects))
	for _, o := range cat.Objects {
		objRows = append(objRows, qserv.Row(datagen.ObjectUserRow(o)))
	}
	if _, err := cl.Ingest("Object", qserv.RowsOf(objRows)); err != nil {
		return err
	}
	srcRows := make([]qserv.Row, 0, len(cat.Sources))
	for _, s := range cat.Sources {
		srcRows = append(srcRows, qserv.Row(datagen.SourceUserRow(s)))
	}
	if _, err := cl.Ingest("Source", qserv.RowsOf(srcRows)); err != nil {
		return err
	}
	post, err := cl.Query(preSQL)
	if err != nil {
		return err
	}
	staleServed := post.CacheHit || len(post.Rows) != 1 ||
		fmt.Sprint(post.Rows[0][0]) != fmt.Sprint(int64(len(srcRows)))

	// Pick the dive targets.
	const probes = 40
	idRes, err := oracle.Query(fmt.Sprintf("SELECT objectId FROM Object ORDER BY objectId LIMIT %d", probes))
	if err != nil {
		return err
	}
	var ids []int64
	for _, r := range idRes.Rows {
		ids = append(ids, r[0].(int64))
	}

	check := func(sql string, got *qserv.Result) (bool, error) {
		want, err := oracle.Query(sql)
		if err != nil {
			return false, err
		}
		return sameRendered(renderRows(got.Rows, false), renderRows(want.Rows, false)), nil
	}

	// Phase 2: index dives — one statement per objectId, each checked
	// against the oracle, each gated to at most Replication chunk jobs.
	var diveLat []time.Duration
	wrong, maxJobs := 0, 0
	for _, id := range ids {
		sql := fmt.Sprintf("SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = %d", id)
		t0 := time.Now()
		res, err := cl.Query(sql)
		if err != nil {
			return err
		}
		diveLat = append(diveLat, time.Since(t0))
		if res.ChunksDispatched > maxJobs {
			maxJobs = res.ChunksDispatched
		}
		ok, err := check(sql, res)
		if err != nil {
			return err
		}
		if !ok || len(res.Rows) == 0 {
			wrong++
		}
	}

	// Phase 3: full fan-out baseline. The duplicated-disjunct predicate
	// is semantically identical to the dive but hides the objectId from
	// the planner's conjunct extraction, so every placed chunk runs.
	var fanLat []time.Duration
	fanJobs := 0
	for _, id := range ids {
		sql := fmt.Sprintf("SELECT objectId, ra_PS, decl_PS FROM Object WHERE (objectId = %d OR objectId = %d)", id, id)
		t0 := time.Now()
		res, err := cl.Query(sql)
		if err != nil {
			return err
		}
		fanLat = append(fanLat, time.Since(t0))
		if res.ChunksDispatched > fanJobs {
			fanJobs = res.ChunksDispatched
		}
		if ok, err := check(sql, res); err != nil {
			return err
		} else if !ok {
			wrong++
		}
	}

	// Phase 4: cache hits — the dive statements again, now answered at
	// the czar without any chunk job.
	var hitLat []time.Duration
	coldHits := 0
	for _, id := range ids {
		sql := fmt.Sprintf("SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = %d", id)
		t0 := time.Now()
		res, err := cl.Query(sql)
		if err != nil {
			return err
		}
		hitLat = append(hitLat, time.Since(t0))
		if !res.CacheHit || res.ChunksDispatched != 0 {
			coldHits++
		}
		if ok, err := check(sql, res); err != nil {
			return err
		} else if !ok {
			wrong++
		}
	}

	diveP50, diveP99 := percentile(diveLat, 50), percentile(diveLat, 99)
	fanP50, fanP99 := percentile(fanLat, 50), percentile(fanLat, 99)
	hitP50, hitP99 := percentile(hitLat, 50), percentile(hitLat, 99)
	st := cl.Status().Cache

	fmt.Printf("claim: index dives dispatch O(1) chunk jobs instead of a fan-out, and repeats are czar-cache hits\n")
	fmt.Printf("workload: %d point queries x {dive, fan-out baseline, cached repeat}, 4 workers x replication %d, %d chunks placed\n",
		len(ids), cfg.Replication, len(cl.Placement.Chunks()))
	fmt.Printf("  index dive:        p50 %10v  p99 %10v  (max %d chunk jobs/query)\n", diveP50, diveP99, maxJobs)
	fmt.Printf("  fan-out baseline:  p50 %10v  p99 %10v  (%d chunk jobs/query)\n", fanP50, fanP99, fanJobs)
	fmt.Printf("  czar cache hit:    p50 %10v  p99 %10v  (0 chunk jobs/query)\n", hitP50, hitP99)
	fmt.Printf("  cache: %d hits, %d misses, %d entries, %d bytes, %d invalidations\n",
		st.Hits, st.Misses, st.Entries, st.Bytes, st.Invalidations)
	fmt.Printf("  ingest invalidation: post-ingest Source count served fresh: %v\n", !staleServed)

	speedup := 0.0
	if diveP99 > 0 {
		speedup = float64(fanP99) / float64(diveP99)
	}
	switch {
	case wrong > 0:
		fmt.Printf("  RESULT: FAIL — %d answers differ from the oracle\n", wrong)
		return fmt.Errorf("pointquery: %d wrong answers", wrong)
	case staleServed:
		fmt.Printf("  RESULT: FAIL — a pre-ingest cache entry survived the ingest\n")
		return fmt.Errorf("pointquery: stale cached answer after ingest")
	case maxJobs > cfg.Replication:
		fmt.Printf("  RESULT: FAIL — a dive dispatched %d chunk jobs (> replication factor %d)\n", maxJobs, cfg.Replication)
		return fmt.Errorf("pointquery: dive dispatched %d jobs", maxJobs)
	case coldHits > 0:
		fmt.Printf("  RESULT: FAIL — %d repeats were not served from the result cache\n", coldHits)
		return fmt.Errorf("pointquery: %d cache misses on repeats", coldHits)
	case fanP99 >= 2*time.Millisecond && speedup < 10:
		fmt.Printf("  RESULT: FAIL — dive p99 only %.1fx under the fan-out baseline (want >= 10x)\n", speedup)
		return fmt.Errorf("pointquery: dive speedup %.1fx", speedup)
	default:
		if fanP99 < 2*time.Millisecond && speedup < 10 {
			fmt.Printf("  RESULT: ok (speedup %.1fx unscored: fan-out p99 %v is below the 2ms timing floor)\n", speedup, fanP99)
		} else {
			fmt.Printf("  RESULT: ok — dives %.1fx faster at p99, zero wrong answers, repeats cache-served\n", speedup)
		}
		return nil
	}
}

// runTelemetry measures the observability layer itself on the live
// cluster. Three hard gates: (a) the telemetry-on point-query p50 is
// within 5% of telemetry-off (or inside a 500µs absolute timing floor —
// at this scale a dive is sub-millisecond and a relative gate alone
// would score scheduler noise), (b) EXPLAIN ANALYZE of a fan-out scan
// returns a span tree carrying the czar merge and at least one
// worker-exec span with non-zero durations, and (c) the admin
// listener's /metrics serves a valid Prometheus exposition with series
// from at least 6 subsystems. Wrong answers anywhere are hard failures.
func runTelemetry(ctx *benchCtx) error {
	cat, err := datagen.Generate(
		datagen.Config{Seed: *seedFlag, ObjectsPerPatch: 60 + *objectsFlag*2, MeanSourcesPerObject: 1},
		datagen.DuplicateConfig{DeclBands: 3, MaxCopies: 12},
	)
	if err != nil {
		return err
	}
	dataRoot, err := os.MkdirTemp("", "qserv-bench-telemetry-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataRoot)

	// Both clusters get a durable store so the measured execution paths
	// are identical; the store is also what registers the chunkstore
	// series gate (c) counts.
	mk := func(disable bool, dir string) (*qserv.Cluster, error) {
		cfg := qserv.DefaultClusterConfig(4)
		cfg.Replication = 2
		cfg.DisableTelemetry = disable
		cfg.DataDir = filepath.Join(dataRoot, dir)
		if !disable {
			cfg.AdminAddr = "127.0.0.1:0"
		}
		cl, err := qserv.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		if err := cl.Load(cat); err != nil {
			cl.Close()
			return nil, err
		}
		return cl, nil
	}
	offCl, err := mk(true, "off")
	if err != nil {
		return err
	}
	defer offCl.Close()
	onCl, err := mk(false, "on")
	if err != nil {
		return err
	}
	defer onCl.Close()

	oracle, err := qserv.NewOracle(qserv.DefaultClusterConfig(4))
	if err != nil {
		return err
	}
	if err := oracle.Load(cat); err != nil {
		return err
	}

	const probes = 50
	idRes, err := oracle.Query(fmt.Sprintf("SELECT objectId FROM Object ORDER BY objectId LIMIT %d", probes))
	if err != nil {
		return err
	}
	var ids []int64
	for _, r := range idRes.Rows {
		ids = append(ids, r[0].(int64))
	}
	if len(ids) < probes/2 {
		return fmt.Errorf("telemetry: only %d probe ids", len(ids))
	}

	wrong := 0
	check := func(sql string, got *qserv.Result) error {
		want, err := oracle.Query(sql)
		if err != nil {
			return err
		}
		if !sameRendered(renderRows(got.Rows, false), renderRows(want.Rows, false)) {
			wrong++
		}
		return nil
	}

	// The measured workload: one uncached index dive per probe id.
	// Warmup exercises planner, fabric lanes, and the merge pipeline on
	// a statement the probes never reuse, so neither cluster pays
	// first-touch costs inside the timed loop.
	measure := func(cl *qserv.Cluster) ([]time.Duration, error) {
		for i := 0; i < 3; i++ {
			if _, err := cl.Query("SELECT COUNT(*) AS n FROM Source"); err != nil {
				return nil, err
			}
		}
		var lat []time.Duration
		for _, id := range ids {
			sql := fmt.Sprintf("SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = %d", id)
			t0 := time.Now()
			res, err := cl.Query(sql)
			if err != nil {
				return nil, err
			}
			lat = append(lat, time.Since(t0))
			if err := check(sql, res); err != nil {
				return nil, err
			}
		}
		return lat, nil
	}
	offLat, err := measure(offCl)
	if err != nil {
		return err
	}
	onLat, err := measure(onCl)
	if err != nil {
		return err
	}
	offP50, offP99 := percentile(offLat, 50), percentile(offLat, 99)
	onP50, onP99 := percentile(onLat, 50), percentile(onLat, 99)
	delta := onP50 - offP50
	overheadOK := onP50 <= offP50+offP50/20 || delta <= 500*time.Microsecond

	// Gate (b): EXPLAIN ANALYZE of a fan-out aggregate nothing has
	// cached yet on the on-cluster, so every chunk dispatches and ships
	// its worker subtree back.
	ea, err := onCl.Query("EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM Object")
	if err != nil {
		return err
	}
	spanRe := regexp.MustCompile(`^\s*(czar merge|worker exec)\s+(\S+)`)
	var mergeSpan, execSpan bool
	for _, row := range ea.Rows {
		line, _ := row[0].(string)
		m := spanRe.FindStringSubmatch(line)
		if m == nil || m[2] == "0s" {
			continue
		}
		if m[1] == "czar merge" {
			mergeSpan = true
		} else {
			execSpan = true
		}
	}
	// EXPLAIN ANALYZE ran the statement for real (and cached its rows);
	// the plain statement must agree with the oracle.
	plain, err := onCl.Query("SELECT COUNT(*) AS n FROM Object")
	if err != nil {
		return err
	}
	if err := check("SELECT COUNT(*) AS n FROM Object", plain); err != nil {
		return err
	}

	// Gate (c): scrape the admin listener like Prometheus would.
	resp, err := http.Get("http://" + onCl.AdminAddr() + "/metrics")
	if err != nil {
		return fmt.Errorf("telemetry: scrape /metrics: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("telemetry: read /metrics: %w", err)
	}
	expoErr := telemetry.ValidateExposition(body)
	subsystems := 0
	var present []string
	for _, p := range []string{"qserv_czar_", "qserv_qcache_", "qserv_worker_", "qserv_scanshare_",
		"qserv_member_", "qserv_chunkstore_", "qserv_xrd_", "qserv_frontend_"} {
		if strings.Contains(string(body), "\n"+p) || strings.HasPrefix(string(body), p) {
			subsystems++
			present = append(present, strings.TrimSuffix(strings.TrimPrefix(p, "qserv_"), "_"))
		}
	}

	fmt.Printf("claim: telemetry rides the hot path within noise, EXPLAIN ANALYZE renders the span tree, /metrics spans the cluster\n")
	fmt.Printf("workload: %d uncached point dives x {telemetry off, telemetry on}, 4 workers x replication 2\n", len(ids))
	fmt.Printf("  telemetry off: p50 %10v  p99 %10v\n", offP50, offP99)
	fmt.Printf("  telemetry on:  p50 %10v  p99 %10v  (p50 delta %v)\n", onP50, onP99, delta)
	fmt.Printf("  EXPLAIN ANALYZE: %d tree lines; czar merge span timed: %v; worker exec span timed: %v\n",
		len(ea.Rows), mergeSpan, execSpan)
	fmt.Printf("  /metrics: %d bytes, exposition valid: %v, %d subsystems: %s\n",
		len(body), expoErr == nil, subsystems, strings.Join(present, " "))

	ctx.metric("off_p50_us", float64(offP50.Microseconds()))
	ctx.metric("on_p50_us", float64(onP50.Microseconds()))
	ctx.metric("p50_delta_us", float64(delta.Microseconds()))
	ctx.metric("explain_tree_lines", float64(len(ea.Rows)))
	ctx.metric("metrics_subsystems", float64(subsystems))
	ctx.gate("overhead_p50", overheadOK, fmt.Sprintf("on %v vs off %v", onP50, offP50))
	ctx.gate("explain_spans", mergeSpan && execSpan, fmt.Sprintf("merge=%v exec=%v", mergeSpan, execSpan))
	ctx.gate("metrics_exposition", expoErr == nil && subsystems >= 6, fmt.Sprintf("%d subsystems", subsystems))
	ctx.gate("oracle", wrong == 0, fmt.Sprintf("%d wrong answers", wrong))

	switch {
	case wrong > 0:
		fmt.Printf("  RESULT: FAIL — %d answers differ from the oracle\n", wrong)
		return fmt.Errorf("telemetry: %d wrong answers", wrong)
	case !mergeSpan || !execSpan:
		fmt.Printf("  RESULT: FAIL — EXPLAIN ANALYZE tree lacks a timed span (czar merge: %v, worker exec: %v)\n", mergeSpan, execSpan)
		return fmt.Errorf("telemetry: incomplete span tree (merge=%v exec=%v)", mergeSpan, execSpan)
	case expoErr != nil:
		fmt.Printf("  RESULT: FAIL — /metrics exposition invalid: %v\n", expoErr)
		return fmt.Errorf("telemetry: invalid exposition: %w", expoErr)
	case subsystems < 6:
		fmt.Printf("  RESULT: FAIL — /metrics covers only %d subsystems (want >= 6)\n", subsystems)
		return fmt.Errorf("telemetry: %d subsystems exported", subsystems)
	case !overheadOK:
		fmt.Printf("  RESULT: FAIL — telemetry-on p50 %v vs off %v exceeds 5%% and the 500µs floor\n", onP50, offP50)
		return fmt.Errorf("telemetry: overhead p50 %v vs %v", onP50, offP50)
	default:
		fmt.Printf("  RESULT: ok — overhead within gate, span tree complete, exposition valid across %d subsystems\n", subsystems)
		return nil
	}
}
