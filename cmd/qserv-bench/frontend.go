package main

import (
	"context"
	"flag"
	"fmt"
	"sync"
	"syscall"
	"time"

	qserv "repro"
	"repro/internal/datagen"
	"repro/internal/frontend"
)

var connsFlag = flag.Int("conns", 1000, "concurrent v2 connections in the frontend storm")

// runFrontendBench measures the connection-scale frontend end to end on
// a real (scaled-down) cluster, in three phases:
//
//  1. Streaming decoupling (hard gate): a large pass-through scan's
//     first row must reach a v2 client while the czar still reports the
//     scan mid-flight — the row-count-free framing means first-row
//     latency does not depend on result size.
//  2. Connection storm: -conns (default 1000) concurrent v2
//     connections, spread over distinct users, each running
//     oracle-checked interactive point queries open-loop while full
//     scans stream concurrently. Reported: p50/p99 first-row and
//     completion latency for the interactive class, scan completion for
//     the scan class. Hard gates: zero errors, zero wrong answers.
//  3. Admission shedding (hard gate): with PerUserSessions=1, a user
//     holding a streaming scan must have further sessions rejected with
//     a fast "busy" error — shedding, not queue collapse.
func runFrontendBench(ctx *benchCtx) error {
	cat, err := datagen.Generate(
		datagen.Config{Seed: *seedFlag, ObjectsPerPatch: 100 + *objectsFlag*8, MeanSourcesPerObject: 0},
		datagen.DuplicateConfig{DeclBands: 3, MaxCopies: 20},
	)
	if err != nil {
		return err
	}
	cfg := qserv.DefaultClusterConfig(2)
	cfg.WorkerSlots = 2
	cfg.ScanPieceRows = 64 // many piece boundaries: scans take observable time
	cl, err := qserv.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.Load(cat); err != nil {
		return err
	}
	oracle, err := qserv.NewOracle(cfg)
	if err != nil {
		return err
	}
	if err := oracle.Load(cat); err != nil {
		return err
	}

	conns := raiseNoFile(*connsFlag)
	scanSQL := "SELECT objectId, ra_PS FROM Object WHERE uFlux_PS > 1e-31"
	scanWant, err := oracle.Query(scanSQL)
	if err != nil {
		return err
	}

	// The storm frontend: sessions sized so legitimate load never
	// queues — admission pressure is phase 3's subject, not this one's.
	f, err := cl.ServeFrontend("127.0.0.1:0", qserv.FrontendConfig{
		MaxSessions: conns + 16, SessionQueueDepth: 64,
	})
	if err != nil {
		return err
	}
	defer f.Close()

	fmt.Printf("claim (frontend PR): v2 streams rows before scans complete, %d concurrent sessions answer correctly, over-quota sessions shed fast\n", conns)

	// ---- phase 1: streaming decoupling ----
	streamVerdict, err := func() (string, error) {
		c, err := frontend.Dial(f.Addr(), "stream-probe", "LSST")
		if err != nil {
			return "", err
		}
		defer c.Close()
		start := time.Now()
		st, err := c.Query(context.Background(), scanSQL)
		if err != nil {
			return "", err
		}
		if _, ok := st.Next(); !ok {
			return "", fmt.Errorf("frontend: scan returned no rows: %v", st.Err())
		}
		tFirst := time.Since(start)
		inFlight := false
		for _, qi := range cl.Running() {
			if !qi.Done && qi.ChunksCompleted < qi.ChunksTotal {
				inFlight = true
			}
		}
		var rest int64
		for {
			if _, ok := st.Next(); !ok {
				break
			}
			rest++
		}
		if st.Err() != nil {
			return "", st.Err()
		}
		tDone := time.Since(start)
		total := rest + 1
		if total != int64(len(scanWant.Rows)) {
			return "", fmt.Errorf("frontend: scan streamed %d rows, oracle has %d", total, len(scanWant.Rows))
		}
		fmt.Printf("  streaming: %d rows; first row %v, complete %v; mid-flight at first row: %v\n",
			total, tFirst.Round(time.Microsecond), tDone.Round(time.Millisecond), inFlight)
		if !inFlight {
			if total > 1000 {
				return "", fmt.Errorf("frontend: first row of a %d-row scan only arrived after the scan completed", total)
			}
			return "warn", nil // result too small for the gate to mean anything
		}
		return "ok", nil
	}()
	if err != nil {
		fmt.Printf("  RESULT: FAIL — streaming decoupling: %v\n", err)
		return err
	}

	// ---- phase 2: connection storm ----
	// Distinct point queries with precomputed oracle answers; every
	// connection's every answer is checked.
	const nPoints = 32
	pointSQL := make([]string, nPoints)
	pointWant := make([][]string, nPoints)
	for i := range pointSQL {
		id := cat.Objects[(i*2909)%len(cat.Objects)].ObjectID
		pointSQL[i] = fmt.Sprintf("SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = %d", id)
		res, err := oracle.Query(pointSQL[i])
		if err != nil {
			return err
		}
		pointWant[i] = renderRows(res.Rows, false)
	}

	nUsers := 50
	if conns < nUsers {
		nUsers = conns
	}
	clients := make([]*frontend.Client, conns)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := range clients {
		c, err := frontend.Dial(f.Addr(), fmt.Sprintf("u%03d", i%nUsers), "LSST")
		if err != nil {
			return fmt.Errorf("frontend: dial %d/%d: %w", i, conns, err)
		}
		clients[i] = c
	}

	// Background full scans, racing the whole storm.
	const nScans = 2
	scanDur := make([]time.Duration, nScans)
	scanErrs := make([]error, nScans)
	var scanWG sync.WaitGroup
	scanStart := time.Now()
	for s := 0; s < nScans; s++ {
		scanWG.Add(1)
		go func(s int) {
			defer scanWG.Done()
			c, err := frontend.Dial(f.Addr(), "scanner", "LSST")
			if err != nil {
				scanErrs[s] = err
				return
			}
			defer c.Close()
			// Distinct predicates so the two scans convoy, not dedupe.
			st, err := c.Query(context.Background(), scanSQL+fmt.Sprintf(" AND decl_PS > %d", -91-s))
			if err != nil {
				scanErrs[s] = err
				return
			}
			var n int64
			for {
				if _, ok := st.Next(); !ok {
					break
				}
				n++
			}
			if st.Err() != nil {
				scanErrs[s] = st.Err()
				return
			}
			if n != int64(len(scanWant.Rows)) {
				scanErrs[s] = fmt.Errorf("scan %d streamed %d rows, oracle has %d", s, n, len(scanWant.Rows))
				return
			}
			scanDur[s] = time.Since(scanStart)
		}(s)
	}

	const perConn = 2
	type sample struct{ first, total time.Duration }
	samples := make([]sample, conns*perConn)
	stormErrs := make([]error, conns)
	startGun := make(chan struct{})
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-startGun
			for j := 0; j < perConn; j++ {
				k := (i*perConn + j) % nPoints
				t0 := time.Now()
				st, err := clients[i].Query(context.Background(), pointSQL[k])
				if err != nil {
					stormErrs[i] = fmt.Errorf("conn %d: %w", i, err)
					return
				}
				var first time.Duration
				var rows [][]any
				for {
					row, ok := st.Next()
					if !ok {
						break
					}
					if len(rows) == 0 {
						first = time.Since(t0)
					}
					rows = append(rows, row)
				}
				if st.Err() != nil {
					stormErrs[i] = fmt.Errorf("conn %d: %w", i, st.Err())
					return
				}
				if !sameRendered(renderRows(rows, false), pointWant[k]) {
					stormErrs[i] = fmt.Errorf("conn %d: %q differs from the oracle", i, pointSQL[k])
					return
				}
				samples[i*perConn+j] = sample{first: first, total: time.Since(t0)}
			}
		}(i)
	}
	close(startGun)
	wg.Wait()
	scanWG.Wait()

	var wrong, failed int
	var firstErr error
	for _, err := range stormErrs {
		if err == nil {
			continue
		}
		failed++
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, err := range scanErrs {
		if err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	var firsts, totals []time.Duration
	for _, s := range samples {
		if s.total > 0 {
			firsts = append(firsts, s.first)
			totals = append(totals, s.total)
		}
	}
	slowScan := scanDur[0]
	for _, d := range scanDur {
		if d > slowScan {
			slowScan = d
		}
	}
	fmt.Printf("  storm: %d connections x %d point queries over %d users, %d full scans concurrent\n",
		conns, perConn, nUsers, nScans)
	fmt.Printf("  interactive first-row   p50 %v  p99 %v\n",
		percentile(firsts, 50).Round(time.Microsecond), percentile(firsts, 99).Round(time.Microsecond))
	fmt.Printf("  interactive completion  p50 %v  p99 %v\n",
		percentile(totals, 50).Round(time.Microsecond), percentile(totals, 99).Round(time.Microsecond))
	fmt.Printf("  full scans (%d rows each) completed in %v, %v\n",
		len(scanWant.Rows), scanDur[0].Round(time.Millisecond), scanDur[1].Round(time.Millisecond))
	if failed > 0 || wrong > 0 {
		fmt.Printf("  RESULT: FAIL — %d failed/wrong under the storm\n", failed+wrong)
		return fmt.Errorf("frontend: storm: %w", firstErr)
	}

	// ---- phase 3: admission shedding ----
	shedVerdict, shedMax, shedCount, err := runShedPhase(cl, scanSQL)
	if err != nil {
		fmt.Printf("  RESULT: FAIL — admission shedding: %v\n", err)
		return err
	}

	p99First := percentile(firsts, 99)
	switch {
	case streamVerdict == "warn":
		fmt.Printf("  RESULT: WARN — storm clean, shedding fast (%d shed, max %v), but the scan was too small to gate streaming decoupling\n",
			shedCount, shedMax.Round(time.Millisecond))
	case shedVerdict == "warn":
		fmt.Printf("  RESULT: WARN — storm clean and streaming decoupled, but every hold scan finished before a shed could be observed\n")
	case slowScan > 0 && p99First >= slowScan:
		// The whole point of the frontend: interactive first-row latency
		// must not be coupled to concurrent scan completion.
		fmt.Printf("  RESULT: FAIL — interactive p99 first-row (%v) not decoupled from scan completion (%v)\n",
			p99First, slowScan)
		return fmt.Errorf("frontend: interactive p99 first-row %v >= scan completion %v", p99First, slowScan)
	default:
		fmt.Printf("  RESULT: ok — streaming decoupled, %d sessions oracle-identical, %d over-quota sessions shed in <= %v\n",
			conns, shedCount, shedMax.Round(time.Millisecond))
	}
	return nil
}

// runShedPhase starts a quota-1 frontend and races probe sessions
// against a scan holding user "greedy"'s one slot: every probe landing
// inside the hold's execution window must shed with a fast busy error.
// Returns "warn" when no probe ever lands inside a hold window (tiny
// data scale) — correctness is then unprovable, not violated.
func runShedPhase(cl *qserv.Cluster, scanSQL string) (verdict string, maxShed time.Duration, shed int, err error) {
	f, err := cl.ServeFrontend("127.0.0.1:0", qserv.FrontendConfig{
		MaxSessions: 8, PerUserSessions: 1, SessionQueueDepth: 2,
	})
	if err != nil {
		return "", 0, 0, err
	}
	defer f.Close()

	prober, err := frontend.Dial(f.Addr(), "greedy", "LSST")
	if err != nil {
		return "", 0, 0, err
	}
	defer prober.Close()
	hold, err := frontend.Dial(f.Addr(), "greedy", "LSST")
	if err != nil {
		return "", 0, 0, err
	}
	defer hold.Close()

	const attempts = 8
	for attempt := 0; attempt < attempts && shed < 3; attempt++ {
		done := make(chan error, 1)
		go func() {
			st, err := hold.Query(context.Background(), scanSQL)
			if err != nil {
				done <- err
				return
			}
			for {
				if _, ok := st.Next(); !ok {
					break
				}
			}
			done <- st.Err()
		}()
	probing:
		for {
			select {
			case err := <-done:
				// The hold itself may shed when a probe won the slot race;
				// either way this attempt's window is over.
				if err != nil && !frontend.IsBusy(err) {
					return "", 0, 0, fmt.Errorf("hold query: %w", err)
				}
				break probing
			default:
			}
			t0 := time.Now()
			st, qerr := prober.Query(context.Background(), "SELECT COUNT(*) FROM Object")
			d := time.Since(t0)
			if qerr == nil {
				// Admitted: the hold wasn't running (or lost the slot
				// race). Drain the stream — it holds the connection
				// until its Done frame — then re-check done.
				for {
					if _, ok := st.Next(); !ok {
						break
					}
				}
				continue
			}
			if !frontend.IsBusy(qerr) {
				return "", 0, 0, fmt.Errorf("over-quota query failed with %v, want busy", qerr)
			}
			if d > time.Second {
				return "", 0, 0, fmt.Errorf("busy shed took %v, want fast rejection", d)
			}
			shed++
			if d > maxShed {
				maxShed = d
			}
			if err := <-done; err != nil && !frontend.IsBusy(err) {
				return "", 0, 0, fmt.Errorf("hold query: %w", err)
			}
			break probing
		}
	}
	if shed == 0 {
		return "warn", 0, 0, nil
	}
	if got := f.Stats().Shed; int(got) < shed {
		return "", 0, 0, fmt.Errorf("SHOW FRONTEND reports %d shed, observed %d", got, shed)
	}
	return "ok", maxShed, shed, nil
}

// raiseNoFile lifts RLIMIT_NOFILE high enough for want client
// connections (each one costs a client and a server fd, plus slack for
// the cluster itself); when the hard limit is lower, the storm is
// clamped with a warning instead of dying on EMFILE mid-run.
func raiseNoFile(want int) int {
	need := uint64(2*want + 256)
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		fmt.Printf("  WARN: getrlimit failed (%v); keeping %d connections and hoping\n", err, want)
		return want
	}
	if rl.Cur < need {
		raised := rl
		raised.Cur = need
		if raised.Cur > raised.Max {
			raised.Cur = raised.Max
		}
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &raised); err == nil {
			rl = raised
		}
	}
	if rl.Cur < need {
		clamped := int((rl.Cur - 256) / 2)
		if clamped < 1 {
			clamped = 1
		}
		fmt.Printf("  WARN: RLIMIT_NOFILE=%d caps the storm at %d connections (asked for %d)\n",
			rl.Cur, clamped, want)
		return clamped
	}
	return want
}
