// Command qserv-czar runs the Qserv master frontend against a set of
// qserv-worker processes, exposing SQL over TCP through the proxy:
//
//	qserv-czar -workers w0=127.0.0.1:7001,w1=127.0.0.1:7002 \
//	           -peers w0,w1 -listen 127.0.0.1:7000 -seed 1
//
// The catalog/layout flags must match the workers' exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/czar"
	"repro/internal/deploy"
	"repro/internal/frontend"
	"repro/internal/member"
	"repro/internal/partition"
	"repro/internal/planopt"
	"repro/internal/qcache"
	"repro/internal/telemetry"
	"repro/internal/xrd"
)

var (
	workersFlag  = flag.String("workers", "w0=127.0.0.1:7001", "name=addr list of workers")
	peersFlag    = flag.String("peers", "", "comma-separated worker names (default: from -workers)")
	listenFlag   = flag.String("listen", "127.0.0.1:7000", "frontend listen address")
	maxSessFlag  = flag.Int("max-sessions", 256, "global concurrent session quota (0 = unlimited)")
	userSessFlag = flag.Int("user-sessions", 64, "per-user concurrent session quota (0 = unlimited)")
	queueFlag    = flag.Int("session-queue", 128, "waiting-session queue depth (full queue sheds with busy)")
	seedFlag     = flag.Int64("seed", 1, "catalog seed")
	objectsFlag  = flag.Int("objects", 400, "objects per patch")
	sourcesFlag  = flag.Float64("sources", 3, "mean sources per object")
	bandsFlag    = flag.Int("bands", 2, "declination bands to duplicate")
	copiesFlag   = flag.Int("copies", 30, "max patch copies (0 = unlimited)")
	cacheFlag    = flag.Int64("cache-bytes", 64<<20, "czar result cache budget in bytes (0 disables)")
	pruneFlag    = flag.Bool("chunk-pruning", true, "prune chunks by derived spatial predicates")
	adminFlag    = flag.String("admin-addr", "", "admin HTTP listen address serving /metrics and /debug/pprof/ (empty = disabled)")
	slowFlag     = flag.Duration("slow-query", 0, "log queries at least this slow with their span summary (0 = disabled)")
)

// logger emits the daemon's lifecycle events; fatal startup failures go
// through fatal() so they render in the same structured format.
var logger = telemetry.NewLogger("qserv-czar")

func fatal(event string, err error) {
	logger.Error(event, "err", err)
	os.Exit(1)
}

func main() {
	flag.Parse()

	names, addrs, err := deploy.ParseWorkerList(*workersFlag)
	if err != nil {
		fatal("config.workers", err)
	}
	peerNames := names
	if *peersFlag != "" {
		peerNames = strings.Split(*peersFlag, ",")
	}

	spec := deploy.CatalogSpec{
		Seed: *seedFlag, Objects: *objectsFlag, Sources: *sourcesFlag,
		Bands: *bandsFlag, Copies: *copiesFlag,
	}
	cat, err := spec.Build()
	if err != nil {
		fatal("catalog.build", err)
	}
	layout, err := deploy.ComputeLayout(cat, peerNames)
	if err != nil {
		fatal("layout.compute", err)
	}

	red := xrd.NewRedirector()
	for name, addr := range addrs {
		ep := xrd.NewTCPEndpoint(name, addr)
		exports := []string{"/result"}
		for _, c := range layout.Placement.ChunksOn(name) {
			exports = append(exports, xrd.QueryPath(int(c)))
		}
		red.Register(ep, exports...)
	}

	// The telemetry spine: one registry every subsystem exports into,
	// per-query tracing retained for SHOW PROFILE, and (with -slow-query)
	// the slow-query log.
	reg := telemetry.NewRegistry()
	xrdVal := func(pick func(xrd.LaneCounters) int64) func() int64 {
		return func() int64 { return pick(xrd.Counters()) }
	}
	reg.CounterFunc("qserv_xrd_dials_total", "fabric endpoint dials attempted",
		xrdVal(func(c xrd.LaneCounters) int64 { return c.Dials }))
	reg.CounterFunc("qserv_xrd_dial_failures_total", "fabric endpoint dials that failed",
		xrdVal(func(c xrd.LaneCounters) int64 { return c.DialFailures }))
	reg.CounterFunc("qserv_xrd_backoff_suppressed_total", "fabric dials fast-failed by backoff",
		xrdVal(func(c xrd.LaneCounters) int64 { return c.BackoffSuppressed }))

	cz := czar.New(czar.DefaultConfig("czar-0"), layout.Registry, layout.Index, layout.Placement, red)
	cz.SetTelemetry(czar.Telemetry{
		Metrics:            reg,
		Trace:              true,
		Ring:               telemetry.NewTraceRing(128),
		SlowQueryThreshold: *slowFlag,
	})
	// The routing tier (index dives, spatial covers) and the epoch/
	// ingest-invalidated result cache. The deploy layout synthesizes
	// its catalog worker-side, so there are no per-chunk ingest stats
	// here — stats pruning stays dormant (nil ChunkStats).
	cz.SetRouter(planopt.New(layout.Registry, layout.Index, nil, planopt.Config{Pruning: *pruneFlag}))
	if *cacheFlag > 0 {
		cz.SetResultCache(qcache.New(*cacheFlag))
	}
	// Close cancels and drains in-flight queries, so workers' scan
	// slots are released before the proxy stops answering.
	defer cz.Close()

	// The availability subsystem: the detector pings every worker over
	// /ping (dispatch then skips dead ones; the TCP lanes' dial backoff
	// keeps dead-peer probing cheap) and the replication manager
	// re-homes chunks when replicas exist to copy from. The deploy
	// layout is replication 1, so a death shows up as pending repairs
	// in SHOW REPAIRS rather than silent timeouts.
	var partitioned []string
	for _, name := range layout.Registry.TableNames() {
		if info, err := layout.Registry.Table(name); err == nil && info.Partitioned {
			partitioned = append(partitioned, info.Name)
		}
	}
	mgr := member.NewManager(member.Config{
		Repair: member.RepairConfig{
			Factor:     1,
			Tables:     func() []string { return partitioned },
			Candidates: func() []string { return names },
			Rehome: func(chunk partition.ChunkID, from, to string) {
				if to != "" {
					if ep, err := red.Endpoint(to); err == nil {
						red.Register(ep, xrd.QueryPath(int(chunk)))
					}
				}
				if from != "" {
					red.Deregister(from, xrd.QueryPath(int(chunk)))
				}
			},
		},
		SelfHeal: true,
	}, xrd.NewClient(red), layout.Placement)
	mgr.Watch(names...)
	cz.SetMembership(mgr)
	mgr.RegisterMetrics(reg)
	mgr.Start()
	defer mgr.Close()

	if *adminFlag != "" {
		admin, err := telemetry.ServeAdmin(*adminFlag, reg)
		if err != nil {
			fatal("admin.listen", err)
		}
		defer admin.Close()
		fmt.Printf("admin HTTP on http://%s (/metrics, /debug/pprof/)\n", admin.Addr())
	}

	// The frontend serves both wire protocols on one listener — legacy
	// v1 and streaming v2 — with admission control bounding the session
	// load any connection storm can put on this czar.
	srv, err := frontend.Serve(*listenFlag, frontend.Config{
		MaxSessions:       *maxSessFlag,
		PerUserSessions:   *userSessFlag,
		SessionQueueDepth: *queueFlag,
		Metrics:           reg,
	}, cz)
	if err != nil {
		fatal("frontend.listen", err)
	}
	defer srv.Close()
	fmt.Printf("czar ready: %d workers, %d chunks; SQL frontend on %s (protocols v1+v2)\n",
		len(addrs), len(layout.Placement.Chunks()), srv.Addr())
	fmt.Printf("connect with: qserv-sql -addr %s  (or database/sql DSN qserv://user@%s/LSST)\n", srv.Addr(), srv.Addr())
	fmt.Printf("manage queries with: SHOW PROCESSLIST; KILL <id>;\n")
	fmt.Printf("watch the cluster with: SHOW WORKERS; SHOW REPAIRS; SHOW FRONTEND; SHOW METRICS; SHOW PROFILE;\n")
	fmt.Printf("profile a query with: EXPLAIN ANALYZE <stmt>;\n")
	logger.Info("czar.ready", "workers", len(addrs),
		"chunks", len(layout.Placement.Chunks()), "listen", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down")
}
