// Command qserv-czar runs the Qserv master frontend against a set of
// qserv-worker processes, exposing SQL over TCP through the proxy:
//
//	qserv-czar -workers w0=127.0.0.1:7001,w1=127.0.0.1:7002 \
//	           -peers w0,w1 -listen 127.0.0.1:7000 -seed 1
//
// The catalog/layout flags must match the workers' exactly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/internal/czar"
	"repro/internal/deploy"
	"repro/internal/frontend"
	"repro/internal/member"
	"repro/internal/partition"
	"repro/internal/planopt"
	"repro/internal/qcache"
	"repro/internal/xrd"
)

var (
	workersFlag  = flag.String("workers", "w0=127.0.0.1:7001", "name=addr list of workers")
	peersFlag    = flag.String("peers", "", "comma-separated worker names (default: from -workers)")
	listenFlag   = flag.String("listen", "127.0.0.1:7000", "frontend listen address")
	maxSessFlag  = flag.Int("max-sessions", 256, "global concurrent session quota (0 = unlimited)")
	userSessFlag = flag.Int("user-sessions", 64, "per-user concurrent session quota (0 = unlimited)")
	queueFlag    = flag.Int("session-queue", 128, "waiting-session queue depth (full queue sheds with busy)")
	seedFlag     = flag.Int64("seed", 1, "catalog seed")
	objectsFlag  = flag.Int("objects", 400, "objects per patch")
	sourcesFlag  = flag.Float64("sources", 3, "mean sources per object")
	bandsFlag    = flag.Int("bands", 2, "declination bands to duplicate")
	copiesFlag   = flag.Int("copies", 30, "max patch copies (0 = unlimited)")
	cacheFlag    = flag.Int64("cache-bytes", 64<<20, "czar result cache budget in bytes (0 disables)")
	pruneFlag    = flag.Bool("chunk-pruning", true, "prune chunks by derived spatial predicates")
)

func main() {
	flag.Parse()
	log.SetPrefix("qserv-czar: ")

	names, addrs, err := deploy.ParseWorkerList(*workersFlag)
	if err != nil {
		log.Fatal(err)
	}
	peerNames := names
	if *peersFlag != "" {
		peerNames = strings.Split(*peersFlag, ",")
	}

	spec := deploy.CatalogSpec{
		Seed: *seedFlag, Objects: *objectsFlag, Sources: *sourcesFlag,
		Bands: *bandsFlag, Copies: *copiesFlag,
	}
	cat, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	layout, err := deploy.ComputeLayout(cat, peerNames)
	if err != nil {
		log.Fatal(err)
	}

	red := xrd.NewRedirector()
	for name, addr := range addrs {
		ep := xrd.NewTCPEndpoint(name, addr)
		exports := []string{"/result"}
		for _, c := range layout.Placement.ChunksOn(name) {
			exports = append(exports, xrd.QueryPath(int(c)))
		}
		red.Register(ep, exports...)
	}

	cz := czar.New(czar.DefaultConfig("czar-0"), layout.Registry, layout.Index, layout.Placement, red)
	// The routing tier (index dives, spatial covers) and the epoch/
	// ingest-invalidated result cache. The deploy layout synthesizes
	// its catalog worker-side, so there are no per-chunk ingest stats
	// here — stats pruning stays dormant (nil ChunkStats).
	cz.SetRouter(planopt.New(layout.Registry, layout.Index, nil, planopt.Config{Pruning: *pruneFlag}))
	if *cacheFlag > 0 {
		cz.SetResultCache(qcache.New(*cacheFlag))
	}
	// Close cancels and drains in-flight queries, so workers' scan
	// slots are released before the proxy stops answering.
	defer cz.Close()

	// The availability subsystem: the detector pings every worker over
	// /ping (dispatch then skips dead ones; the TCP lanes' dial backoff
	// keeps dead-peer probing cheap) and the replication manager
	// re-homes chunks when replicas exist to copy from. The deploy
	// layout is replication 1, so a death shows up as pending repairs
	// in SHOW REPAIRS rather than silent timeouts.
	var partitioned []string
	for _, name := range layout.Registry.TableNames() {
		if info, err := layout.Registry.Table(name); err == nil && info.Partitioned {
			partitioned = append(partitioned, info.Name)
		}
	}
	mgr := member.NewManager(member.Config{
		Repair: member.RepairConfig{
			Factor:     1,
			Tables:     func() []string { return partitioned },
			Candidates: func() []string { return names },
			Rehome: func(chunk partition.ChunkID, from, to string) {
				if to != "" {
					if ep, err := red.Endpoint(to); err == nil {
						red.Register(ep, xrd.QueryPath(int(chunk)))
					}
				}
				if from != "" {
					red.Deregister(from, xrd.QueryPath(int(chunk)))
				}
			},
		},
		SelfHeal: true,
	}, xrd.NewClient(red), layout.Placement)
	mgr.Watch(names...)
	cz.SetMembership(mgr)
	mgr.Start()
	defer mgr.Close()

	// The frontend serves both wire protocols on one listener — legacy
	// v1 and streaming v2 — with admission control bounding the session
	// load any connection storm can put on this czar.
	srv, err := frontend.Serve(*listenFlag, frontend.Config{
		MaxSessions:       *maxSessFlag,
		PerUserSessions:   *userSessFlag,
		SessionQueueDepth: *queueFlag,
	}, cz)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("czar ready: %d workers, %d chunks; SQL frontend on %s (protocols v1+v2)\n",
		len(addrs), len(layout.Placement.Chunks()), srv.Addr())
	fmt.Printf("connect with: qserv-sql -addr %s  (or database/sql DSN qserv://user@%s/LSST)\n", srv.Addr(), srv.Addr())
	fmt.Printf("manage queries with: SHOW PROCESSLIST; KILL <id>;\n")
	fmt.Printf("watch the cluster with: SHOW WORKERS; SHOW REPAIRS; SHOW FRONTEND;\n")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down")
}
