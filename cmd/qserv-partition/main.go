// Command qserv-partition is the spatial partitioner: it reads a
// catalog CSV (as written by qserv-datagen), assigns every row its
// chunkId and subChunkId under the two-level partitioning, and writes
// one CSV per chunk plus one overlap CSV per chunk — the loader-side
// data preparation of paper section 5.2.
//
//	qserv-partition -in /tmp/catalog/object.csv -ra ra_PS -decl decl_PS \
//	                -stripes 85 -substripes 12 -overlap 0.01667 -out /tmp/chunks
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/partition"
	"repro/internal/sphgeom"
	"repro/internal/telemetry"
)

// logger emits the tool's structured failures.
var logger = telemetry.NewLogger("qserv-partition")

func fatal(event string, err error) {
	logger.Error(event, "err", err)
	os.Exit(1)
}

var (
	inFlag      = flag.String("in", "", "input CSV (with header)")
	outFlag     = flag.String("out", "chunks", "output directory")
	raFlag      = flag.String("ra", "ra_PS", "RA column name")
	declFlag    = flag.String("decl", "decl_PS", "declination column name")
	stripesFlag = flag.Int("stripes", 85, "declination stripes (paper: 85)")
	subFlag     = flag.Int("substripes", 12, "sub-stripes per stripe (paper: 12)")
	overlapFlag = flag.Float64("overlap", 0.01667, "overlap margin, degrees (paper: 1 arcmin)")
)

func main() {
	flag.Parse()
	if *inFlag == "" {
		fatal("config.in", fmt.Errorf("-in is required"))
	}
	chunker, err := partition.NewChunker(partition.Config{
		NumStripes:             *stripesFlag,
		NumSubStripesPerStripe: *subFlag,
		Overlap:                *overlapFlag,
	})
	if err != nil {
		fatal("chunker.new", err)
	}
	in, err := os.Open(*inFlag)
	if err != nil {
		fatal("in.open", err)
	}
	defer in.Close()
	if err := os.MkdirAll(*outFlag, 0o755); err != nil {
		fatal("out.mkdir", err)
	}

	r := csv.NewReader(in)
	header, err := r.Read()
	if err != nil {
		fatal("header.read", err)
	}
	raCol, declCol := -1, -1
	for i, h := range header {
		switch h {
		case *raFlag:
			raCol = i
		case *declFlag:
			declCol = i
		}
	}
	if raCol < 0 || declCol < 0 {
		fatal("header.columns", fmt.Errorf("columns %q/%q not in header %v", *raFlag, *declFlag, header))
	}

	writers := map[string]*csv.Writer{}
	files := []*os.File{}
	get := func(name string) (*csv.Writer, error) {
		if w, ok := writers[name]; ok {
			return w, nil
		}
		f, err := os.Create(filepath.Join(*outFlag, name))
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		w := csv.NewWriter(f)
		out := append(append([]string{}, header...), "chunkId", "subChunkId")
		if err := w.Write(out); err != nil {
			return nil, err
		}
		writers[name] = w
		return w, nil
	}

	rows, overlaps := 0, 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal("row.read", err)
		}
		ra, err := strconv.ParseFloat(rec[raCol], 64)
		if err != nil {
			fatal("row.ra", fmt.Errorf("bad RA %q: %w", rec[raCol], err))
		}
		decl, err := strconv.ParseFloat(rec[declCol], 64)
		if err != nil {
			fatal("row.decl", fmt.Errorf("bad decl %q: %w", rec[declCol], err))
		}
		p := sphgeom.NewPoint(ra, decl)
		chunk, sub := chunker.Locate(p)
		out := append(append([]string{}, rec...),
			strconv.Itoa(int(chunk)), strconv.Itoa(int(sub)))
		w, err := get(fmt.Sprintf("chunk_%d.csv", chunk))
		if err != nil {
			fatal("chunk.create", err)
		}
		if err := w.Write(out); err != nil {
			fatal("chunk.write", err)
		}
		rows++
		// Overlap membership for neighboring chunks.
		margin := chunker.Config().Overlap
		probe := sphgeom.NewBox(ra-margin*3, ra+margin*3, decl-margin*3, decl+margin*3)
		for _, c := range chunker.ChunksIn(probe) {
			if c == chunk {
				continue
			}
			in, err := chunker.InOverlap(c, p)
			if err != nil || !in {
				continue
			}
			w, err := get(fmt.Sprintf("overlap_%d.csv", c))
			if err != nil {
				fatal("overlap.create", err)
			}
			if err := w.Write(out); err != nil {
				fatal("overlap.write", err)
			}
			overlaps++
		}
	}
	for _, w := range writers {
		w.Flush()
		if err := w.Error(); err != nil {
			fatal("out.flush", err)
		}
	}
	for _, f := range files {
		f.Close()
	}
	fmt.Printf("partitioned %d rows into %d files (%d overlap copies) under %s\n",
		rows, len(writers), overlaps, *outFlag)
}
