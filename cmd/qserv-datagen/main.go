// Command qserv-datagen synthesizes the PT1.1-style catalog and writes
// it as CSV (the duplicator of paper section 6.1.2):
//
//	qserv-datagen -objects 2000 -bands 13 -out /tmp/catalog
//
// produces object.csv and source.csv under -out. With -spec it instead
// prints the generated catalog's declarative qserv.CatalogSpec as JSON
// (the document Cluster.CreateTables accepts) and exits.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	qserv "repro"
	"repro/internal/datagen"
	"repro/internal/telemetry"
)

var (
	outFlag     = flag.String("out", ".", "output directory")
	seedFlag    = flag.Int64("seed", 1, "generation seed")
	objectsFlag = flag.Int("objects", 2000, "objects per patch")
	sourcesFlag = flag.Float64("sources", 5, "mean sources per object")
	bandsFlag   = flag.Int("bands", 13, "declination bands (13 = full sky)")
	copiesFlag  = flag.Int("copies", 0, "max patch copies (0 = unlimited)")
	clipFlag    = flag.Float64("clip", 54, "Source |decl| clip in degrees (paper: 54)")
	specFlag    = flag.Bool("spec", false, "print the catalog's CatalogSpec as JSON and exit")
)

// logger emits the tool's structured failures.
var logger = telemetry.NewLogger("qserv-datagen")

func fatal(event string, err error) {
	logger.Error(event, "err", err)
	os.Exit(1)
}

func main() {
	flag.Parse()
	if *specFlag {
		out, err := json.MarshalIndent(qserv.LSSTSpec(), "", "  ")
		if err != nil {
			fatal("spec.marshal", err)
		}
		fmt.Println(string(out))
		return
	}
	cat, err := datagen.Generate(
		datagen.Config{Seed: *seedFlag, ObjectsPerPatch: *objectsFlag, MeanSourcesPerObject: *sourcesFlag},
		datagen.DuplicateConfig{DeclBands: *bandsFlag, SourceDeclLimit: *clipFlag, MaxCopies: *copiesFlag},
	)
	if err != nil {
		fatal("catalog.generate", err)
	}
	if err := os.MkdirAll(*outFlag, 0o755); err != nil {
		fatal("out.mkdir", err)
	}
	if err := writeObjects(filepath.Join(*outFlag, "object.csv"), cat); err != nil {
		fatal("objects.write", err)
	}
	if err := writeSources(filepath.Join(*outFlag, "source.csv"), cat); err != nil {
		fatal("sources.write", err)
	}
	fmt.Printf("wrote %d objects and %d sources to %s\n", len(cat.Objects), len(cat.Sources), *outFlag)
}

func writeObjects(path string, cat *datagen.Catalog) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	header := []string{"objectId", "ra_PS", "decl_PS", "uFlux_PS", "gFlux_PS", "rFlux_PS",
		"iFlux_PS", "zFlux_PS", "yFlux_PS", "uFlux_SG", "uRadius_PS"}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, o := range cat.Objects {
		rec := []string{
			strconv.FormatInt(o.ObjectID, 10),
			ftoa(o.RA), ftoa(o.Decl),
			ftoa(o.UFlux), ftoa(o.GFlux), ftoa(o.RFlux),
			ftoa(o.IFlux), ftoa(o.ZFlux), ftoa(o.YFlux),
			ftoa(o.UFluxSG), ftoa(o.URadiusPS),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Error()
}

func writeSources(path string, cat *datagen.Catalog) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	header := []string{"sourceId", "objectId", "taiMidPoint", "ra", "decl", "psfFlux", "psfFluxErr", "filterId"}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, s := range cat.Sources {
		rec := []string{
			strconv.FormatInt(s.SourceID, 10),
			strconv.FormatInt(s.ObjectID, 10),
			ftoa(s.TaiMidPoint), ftoa(s.RA), ftoa(s.Decl),
			ftoa(s.PsfFlux), ftoa(s.PsfFluxErr),
			strconv.FormatInt(s.FilterID, 10),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Error()
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
