package qserv

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/meta"
	"repro/internal/sqlengine"
	"repro/internal/sqlparse"
)

// This file is the public data-definition language: a catalog is
// declared as a CatalogSpec — tables classified by the paper's kinds
// (director / child partitioned by the director key / replicated,
// section 5) — and installed with Cluster.CreateTables. Every type here
// is qserv-owned and JSON-serializable, so specs can live in config
// files; no internal/* package leaks through these signatures.

// TableKind classifies a table for partitioning and placement.
type TableKind string

const (
	// Director tables are spatially partitioned by their own position
	// columns and own the director key — the key the frontend's
	// secondary index covers and every child row follows. A catalog has
	// at most one director table.
	Director TableKind = "director"
	// Child tables are partitioned by the director key: each child row
	// is stored in the chunk holding its director row, so director-key
	// joins never cross nodes.
	Child TableKind = "child"
	// Replicated tables are small dimension tables copied to every
	// worker and the czar.
	Replicated TableKind = "replicated"
)

// ColumnType is a column's storage type.
type ColumnType string

// The storage types.
const (
	Integer ColumnType = "BIGINT"
	Double  ColumnType = "DOUBLE"
	Text    ColumnType = "VARCHAR"
)

// ColumnSpec declares one column.
type ColumnSpec struct {
	Name string     `json:"name"`
	Type ColumnType `json:"type"`
}

// TableSpec declares one catalog table.
type TableSpec struct {
	// Name is the logical table name users query.
	Name string `json:"name"`
	// Kind selects partitioning and placement.
	Kind TableKind `json:"kind"`
	// Columns are the user columns in storage order. Partitioned tables
	// automatically gain trailing chunkId/subChunkId columns, computed
	// during ingest.
	Columns []ColumnSpec `json:"columns"`
	// RAColumn / DeclColumn name the spherical position columns (in
	// degrees) partitioning and spatial predicates use. Required for
	// director tables; on a child they enable overlap participation.
	RAColumn   string `json:"raColumn,omitempty"`
	DeclColumn string `json:"declColumn,omitempty"`
	// DirectorKey is the integer key column: the indexed key a director
	// owns, or the foreign-key column a child follows.
	DirectorKey string `json:"directorKey,omitempty"`
	// Director names the director table a child follows; it defaults to
	// the catalog's single director table.
	Director string `json:"director,omitempty"`
	// Overlap marks the table as participating in overlap storage: each
	// row is also copied into the overlap companion tables of nearby
	// chunks whose margin contains it, so spatial joins near chunk
	// borders need no remote data.
	Overlap bool `json:"overlap,omitempty"`
	// IndexColumns are extra worker-side hash-index columns, built
	// incrementally during ingest (the director key is always indexed).
	IndexColumns []string `json:"indexColumns,omitempty"`
}

// CatalogSpec declares one sharded catalog database.
type CatalogSpec struct {
	// Database is the catalog database name; it must match the
	// cluster's configured Database (empty inherits it).
	Database string `json:"database"`
	// Tables are the catalog's tables.
	Tables []TableSpec `json:"tables"`
}

// Validate checks the spec without installing it.
func (s CatalogSpec) Validate() error {
	spec, err := s.toMeta()
	if err != nil {
		return err
	}
	return spec.Validate()
}

// toMeta converts the public spec to the internal representation.
func (s CatalogSpec) toMeta() (meta.CatalogSpec, error) {
	out := meta.CatalogSpec{Database: s.Database}
	for _, t := range s.Tables {
		kind, err := meta.ParseTableKind(string(t.Kind))
		if err != nil {
			return meta.CatalogSpec{}, fmt.Errorf("qserv: table %s: unknown kind %q", t.Name, t.Kind)
		}
		mt := meta.TableSpec{
			Name:         t.Name,
			Kind:         kind,
			RAColumn:     t.RAColumn,
			DeclColumn:   t.DeclColumn,
			DirectorKey:  t.DirectorKey,
			Director:     t.Director,
			Overlap:      t.Overlap,
			IndexColumns: append([]string(nil), t.IndexColumns...),
		}
		for _, c := range t.Columns {
			typ, err := sqlparse.ParseColType(string(c.Type))
			if err != nil {
				return meta.CatalogSpec{}, fmt.Errorf("qserv: table %s column %s: unknown type %q", t.Name, c.Name, c.Type)
			}
			mt.Columns = append(mt.Columns, sqlengine.Column{Name: c.Name, Type: typ})
		}
		out.Tables = append(out.Tables, mt)
	}
	return out, nil
}

// specFromMeta converts an internal spec to the public form.
func specFromMeta(s meta.CatalogSpec) CatalogSpec {
	out := CatalogSpec{Database: s.Database}
	for _, t := range s.Tables {
		pt := TableSpec{
			Name:         t.Name,
			Kind:         TableKind(t.Kind.String()),
			RAColumn:     t.RAColumn,
			DeclColumn:   t.DeclColumn,
			DirectorKey:  t.DirectorKey,
			Director:     t.Director,
			Overlap:      t.Overlap,
			IndexColumns: append([]string(nil), t.IndexColumns...),
		}
		for _, c := range t.Columns {
			pt.Columns = append(pt.Columns, ColumnSpec{Name: c.Name, Type: ColumnType(c.Type.String())})
		}
		out.Tables = append(out.Tables, pt)
	}
	return out
}

// LSSTSpec returns the declarative definition of the paper's catalog —
// the spec the deprecated Load wrapper installs: Object (director),
// Source and ForcedSource (children partitioned by objectId), and the
// replicated Filter dimension table.
func LSSTSpec() CatalogSpec {
	return specFromMeta(datagen.LSSTSpec())
}
