package qserv

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/telemetry"
)

// TestAdminEndpointExposesClusterMetrics boots a small cluster with
// the admin HTTP listener on, runs a fan-out query plus a repeat (so
// cache series move), and scrapes /metrics: the exposition must parse
// and carry series from the telemetry spine's in-cluster subsystems.
func TestAdminEndpointExposesClusterMetrics(t *testing.T) {
	cat, err := datagen.Generate(
		datagen.Config{Seed: 7, ObjectsPerPatch: 120, MeanSourcesPerObject: 2},
		datagen.DuplicateConfig{DeclBands: 2, SourceDeclLimit: 54, MaxCopies: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClusterConfig(4)
	cfg.AdminAddr = "127.0.0.1:0"
	cfg.DataDir = t.TempDir()
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Load(cat); err != nil {
		t.Fatal(err)
	}
	if cl.Metrics() == nil {
		t.Fatal("Metrics() = nil with telemetry enabled")
	}
	if cl.AdminAddr() == "" {
		t.Fatal("AdminAddr() empty with AdminAddr configured")
	}

	if _, err := cl.Query("SELECT COUNT(*) FROM Object"); err != nil {
		t.Fatalf("query: %v", err)
	}
	if _, err := cl.Query("SELECT COUNT(*) FROM Object"); err != nil {
		t.Fatalf("repeat query: %v", err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", cl.AdminAddr()))
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := telemetry.ValidateExposition(body); err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	text := string(body)
	subsystems := []string{
		"qserv_czar_", "qserv_qcache_", "qserv_worker_", "qserv_scanshare_",
		"qserv_member_", "qserv_chunkstore_", "qserv_xrd_",
	}
	var present int
	for _, prefix := range subsystems {
		if strings.Contains(text, "\n"+prefix) || strings.HasPrefix(text, prefix) {
			present++
		} else {
			t.Logf("subsystem %s absent from exposition", prefix)
		}
	}
	if present < 6 {
		t.Fatalf("exposition spans %d subsystems, want >= 6", present)
	}
	// The fan-out actually moved the hot-path counters.
	if !strings.Contains(text, "qserv_czar_queries_total 2") {
		t.Errorf("czar query counter did not advance:\n%s", grepLines(text, "qserv_czar_queries_total"))
	}

	// pprof rides the same listener.
	pp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", cl.AdminAddr()))
	if err != nil {
		t.Fatalf("pprof: %v", err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", pp.StatusCode)
	}
}

// TestDisableTelemetry pins the off switch: no registry, no admin
// listener, queries still answer.
func TestDisableTelemetry(t *testing.T) {
	cat, err := datagen.Generate(
		datagen.Config{Seed: 7, ObjectsPerPatch: 60, MeanSourcesPerObject: 2},
		datagen.DuplicateConfig{DeclBands: 1, SourceDeclLimit: 54, MaxCopies: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClusterConfig(2)
	cfg.DisableTelemetry = true
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Load(cat); err != nil {
		t.Fatal(err)
	}
	if cl.Metrics() != nil {
		t.Fatal("Metrics() non-nil with DisableTelemetry")
	}
	if cl.AdminAddr() != "" {
		t.Fatal("AdminAddr() non-empty without AdminAddr configured")
	}
	res, err := cl.Query("SELECT COUNT(*) FROM Object")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("query with telemetry off: %v, %v", res, err)
	}
	if res.ResultBytes != res.BytesMerged {
		t.Fatalf("ResultBytes %d != BytesMerged %d with tracing off", res.ResultBytes, res.BytesMerged)
	}
}

// grepLines returns the exposition lines containing substr, for
// failure messages.
func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
